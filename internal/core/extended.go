package core

import (
	"fmt"

	"repro/internal/keys"
)

// This file implements the "Potential Extension" of §IV-D: query
// sequences with composed queries such as I(key1, S(key2)) — insert
// key1 with the value drawn from key2 — whose QUD chains grow beyond
// length 2. The extended analysis resolves such chains transitively
// (compiler constant propagation at the query level), rewriting
// composed queries into plain ones whenever their source value is
// defined earlier in the sequence, then reuses the standard two-round
// QSAT machinery on the result.

// XOp is an extended query operation.
type XOp uint8

// Extended operations: the three basic ones plus the composed
// insert-from of §IV-D.
const (
	XSearch XOp = iota
	XInsert
	XDelete
	// XInsertFrom is I(Key, S(SrcKey)): if SrcKey is present, its value
	// is stored under Key; if SrcKey is absent the query is a no-op.
	XInsertFrom
)

// XQuery is an extended query.
type XQuery struct {
	Op     XOp
	Key    keys.Key
	SrcKey keys.Key   // XInsertFrom only
	Value  keys.Value // XInsert only
}

// String renders the query in the paper's notation.
func (q XQuery) String() string {
	switch q.Op {
	case XSearch:
		return fmt.Sprintf("S(%d)", q.Key)
	case XInsert:
		return fmt.Sprintf("I(%d,%d)", q.Key, q.Value)
	case XDelete:
		return fmt.Sprintf("D(%d)", q.Key)
	case XInsertFrom:
		return fmt.Sprintf("I(%d,S(%d))", q.Key, q.SrcKey)
	default:
		return fmt.Sprintf("X(%d)", uint8(q.Op))
	}
}

// XResolve performs the extended transformation: composed queries whose
// source key has a reaching in-sequence definition are rewritten to
// plain queries by walking the (multi-hop) QUD chain to a value. The
// returned sequence contains only plain operations where resolution
// succeeded; unresolvable composed queries (source state unknown at
// batch entry) are returned unchanged for runtime evaluation.
//
// Resolution rules for I(k1, S(k2)) with reaching definition d of k2:
//
//	d = I(k2, v):          rewrite to I(k1, v)
//	d = I(k2, S(k3)):      resolve d first (chain length > 2)
//	d = D(k2):             the source is absent -> the query is a no-op
//	                       and is dropped
//	no reaching d:         left composed
//
// Chains are resolved to a fixed point, so arbitrarily long
// I(a,S(b)) <- I(b,S(c)) <- I(c,v) chains collapse.
func XResolve(qs []XQuery) []XQuery {
	out := make([]XQuery, 0, len(qs))
	// reach maps each key to its latest resolved defining state within
	// the sequence so far.
	type state struct {
		known   bool       // a defining query has been seen
		present bool       // key currently present (vs deleted)
		value   keys.Value // value when present
		// concrete is false when the define was an unresolved
		// composed query: downstream uses cannot be resolved either.
		concrete bool
	}
	reach := map[keys.Key]state{}

	for _, q := range qs {
		switch q.Op {
		case XSearch:
			out = append(out, q)
		case XInsert:
			reach[q.Key] = state{known: true, present: true, value: q.Value, concrete: true}
			out = append(out, q)
		case XDelete:
			reach[q.Key] = state{known: true, present: false, concrete: true}
			out = append(out, q)
		case XInsertFrom:
			src, ok := reach[q.SrcKey]
			switch {
			case ok && src.known && src.concrete && src.present:
				// Chain resolved: rewrite to a plain insert.
				q2 := XQuery{Op: XInsert, Key: q.Key, Value: src.value}
				reach[q.Key] = state{known: true, present: true, value: src.value, concrete: true}
				out = append(out, q2)
			case ok && src.known && src.concrete && !src.present:
				// Source deleted: the composed insert is a no-op; the
				// target key keeps whatever definition it had (its
				// reach state is unchanged).
			default:
				// Unresolvable within the sequence: keep composed and
				// poison the target key's state.
				reach[q.Key] = state{known: true, present: true, concrete: false}
				out = append(out, q)
			}
		}
	}
	return out
}

// XLower converts a fully-plain extended sequence to the basic query
// IR. It fails if any composed query remains (callers evaluate those
// at runtime instead).
func XLower(qs []XQuery) ([]keys.Query, error) {
	out := make([]keys.Query, 0, len(qs))
	for i, q := range qs {
		switch q.Op {
		case XSearch:
			out = append(out, keys.Search(q.Key))
		case XInsert:
			out = append(out, keys.Insert(q.Key, q.Value))
		case XDelete:
			out = append(out, keys.Delete(q.Key))
		default:
			return nil, fmt.Errorf("core: query %d (%s) is still composed", i, q)
		}
	}
	return keys.Number(out), nil
}

// XEvaluate is the reference interpreter for extended sequences: it
// applies qs to store in order and returns, per sequence position of a
// search, its result. Used to differential-test XResolve.
func XEvaluate(qs []XQuery, store map[keys.Key]keys.Value) map[int]keys.Result {
	res := make(map[int]keys.Result)
	for i, q := range qs {
		switch q.Op {
		case XSearch:
			v, ok := store[q.Key]
			res[i] = keys.Result{Value: v, Found: ok}
		case XInsert:
			store[q.Key] = q.Value
		case XDelete:
			delete(store, q.Key)
		case XInsertFrom:
			if v, ok := store[q.SrcKey]; ok {
				store[q.Key] = v
			}
		}
	}
	return res
}
