package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestXQueryString(t *testing.T) {
	cases := []struct {
		q    XQuery
		want string
	}{
		{XQuery{Op: XSearch, Key: 1}, "S(1)"},
		{XQuery{Op: XInsert, Key: 1, Value: 2}, "I(1,2)"},
		{XQuery{Op: XDelete, Key: 3}, "D(3)"},
		{XQuery{Op: XInsertFrom, Key: 1, SrcKey: 2}, "I(1,S(2))"},
		{XQuery{Op: XOp(9)}, "X(9)"},
	}
	for _, c := range cases {
		if got := c.q.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestXResolvePaperExample(t *testing.T) {
	// §IV-D: I(key1, S(key2)) with key2 defined earlier — the QUD
	// chain has length > 2 and must collapse to a plain insert.
	qs := []XQuery{
		{Op: XInsert, Key: 2, Value: 42},
		{Op: XInsertFrom, Key: 1, SrcKey: 2},
		{Op: XSearch, Key: 1},
	}
	out := XResolve(qs)
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	if out[1].Op != XInsert || out[1].Key != 1 || out[1].Value != 42 {
		t.Fatalf("composed query not resolved: %v", out[1])
	}
	lowered, err := XLower(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(lowered) != 3 || lowered[1].Op != keys.OpInsert {
		t.Fatalf("lowered = %v", lowered)
	}
}

func TestXResolveLongChain(t *testing.T) {
	// I(c,7); I(b,S(c)); I(a,S(b)); S(a) — a length-4 chain.
	qs := []XQuery{
		{Op: XInsert, Key: 3, Value: 7},
		{Op: XInsertFrom, Key: 2, SrcKey: 3},
		{Op: XInsertFrom, Key: 1, SrcKey: 2},
		{Op: XSearch, Key: 1},
	}
	out := XResolve(qs)
	for i := 1; i <= 2; i++ {
		if out[i].Op != XInsert || out[i].Value != 7 {
			t.Fatalf("chain link %d unresolved: %v", i, out[i])
		}
	}
}

func TestXResolveDeletedSourceIsNoop(t *testing.T) {
	qs := []XQuery{
		{Op: XInsert, Key: 1, Value: 5},
		{Op: XDelete, Key: 2},
		{Op: XInsertFrom, Key: 1, SrcKey: 2}, // no-op: source absent
		{Op: XSearch, Key: 1},                // must still see 5
	}
	out := XResolve(qs)
	if len(out) != 3 {
		t.Fatalf("no-op composed query not dropped: %v", out)
	}
	store := map[keys.Key]keys.Value{}
	res := XEvaluate(out, store)
	if r := res[2]; !r.Found || r.Value != 5 {
		t.Fatalf("search = %+v, want 5", r)
	}
}

func TestXResolveUnknownSourceStaysComposed(t *testing.T) {
	qs := []XQuery{
		{Op: XInsertFrom, Key: 1, SrcKey: 2}, // key2 state unknown
	}
	out := XResolve(qs)
	if len(out) != 1 || out[0].Op != XInsertFrom {
		t.Fatalf("out = %v", out)
	}
	if _, err := XLower(out); err == nil {
		t.Fatal("XLower must reject composed queries")
	}
}

func TestXResolvePoisonedChain(t *testing.T) {
	// An unresolved composed define poisons downstream resolution.
	qs := []XQuery{
		{Op: XInsertFrom, Key: 2, SrcKey: 9}, // unknown source
		{Op: XInsertFrom, Key: 1, SrcKey: 2}, // depends on poisoned key 2
	}
	out := XResolve(qs)
	if len(out) != 2 || out[0].Op != XInsertFrom || out[1].Op != XInsertFrom {
		t.Fatalf("poisoned chain resolved incorrectly: %v", out)
	}
	// A concrete redefinition heals the key.
	qs = append(qs, XQuery{Op: XInsert, Key: 2, Value: 8},
		XQuery{Op: XInsertFrom, Key: 5, SrcKey: 2})
	out = XResolve(qs)
	last := out[len(out)-1]
	if last.Op != XInsert || last.Value != 8 {
		t.Fatalf("healed chain not resolved: %v", last)
	}
}

// Property: XResolve preserves semantics under XEvaluate for any
// sequence and any initial store.
func TestXResolveEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		qs := make([]XQuery, n)
		for i := range qs {
			q := XQuery{Key: keys.Key(r.Intn(8))}
			switch r.Intn(4) {
			case 0:
				q.Op = XSearch
			case 1:
				q.Op = XInsert
				q.Value = keys.Value(r.Intn(1000))
			case 2:
				q.Op = XDelete
			default:
				q.Op = XInsertFrom
				q.SrcKey = keys.Key(r.Intn(8))
			}
			qs[i] = q
		}
		store1 := map[keys.Key]keys.Value{}
		store2 := map[keys.Key]keys.Value{}
		for i := 0; i < r.Intn(8); i++ {
			k := keys.Key(r.Intn(8))
			v := keys.Value(r.Intn(1000))
			store1[k] = v
			store2[k] = v
		}
		want := XEvaluate(qs, store1)
		got := XEvaluate(XResolve(qs), store2)

		// Results compare positionally by search occurrence order
		// (XResolve never reorders or drops searches).
		wantList := resultsInOrder(qs, want)
		gotList := resultsInOrder(XResolve(qs), got)
		if len(wantList) != len(gotList) {
			return false
		}
		for i := range wantList {
			if wantList[i] != gotList[i] {
				return false
			}
		}
		if len(store1) != len(store2) {
			return false
		}
		for k, v := range store1 {
			if store2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// resultsInOrder lists search results in sequence order.
func resultsInOrder(qs []XQuery, res map[int]keys.Result) []keys.Result {
	var out []keys.Result
	for i, q := range qs {
		if q.Op == XSearch {
			out = append(out, res[i])
		}
	}
	return out
}
