package core

import (
	"repro/internal/bsp"
	"repro/internal/keys"
	"repro/internal/stats"
)

// This file implements two-stage pipelined stream execution: the
// intra-batch QTrans transform of batch N+1 overlaps the PALM tree
// stages of batch N.
//
// Stage split. Sorting and QSAT (Phases I and II) touch only the batch
// itself, the slot's Router, and the batch's ResultSet — never the tree
// or the inter-batch cache. The tree stages (FIND, evaluate,
// restructure) and the top-K cache pass touch shared state. So:
//
//	stage A (transform): sort + QSAT on a second BSP pool, one batch
//	    ahead, into a per-slot Transformer/Router/stats.
//	stage B (tree): top-K cache pass, PALM stages, representative
//	    broadcast — on the engine's own pool, strictly in batch order.
//
// Handoff rule (the correctness hinge, DESIGN.md §4.6): the top-K cache
// is read and written ONLY in stage B. Stage A never consults the
// cache, so the transform of batch N+1 can run while batch N is still
// mutating cache and tree; batch N+1's cache pass starts only after
// batch N's evaluation has committed. Because QTrans's intra-batch
// transform is independent of tree and cache state, the observable
// semantics — results, final tree, flushed cache — are byte-identical
// to serial execution. The differential tests in pipeline_test.go
// verify exactly that.
//
// Two slots are enough: one batch transforming, one batch in the tree.
// Each slot owns a Transformer (bound to the transform pool), a stats
// block, a lendable ResultSet, and the reduced-query view, so
// steady-state streaming allocates nothing.

// Job is one batch travelling through ProcessStream. Qs is reordered in
// place by the transform. If RS is nil the stream points it at a
// recycled ResultSet that is valid only until the emit callback
// returns; callers that keep results longer must supply their own RS
// (distinct per in-flight job), and callers that recycle Job structs
// must reset RS (to nil or their own set) before resubmitting. The
// stream never touches a Job after handing it to emit — ownership
// returns to the caller at that instant, so recycling a Job from
// inside the emit callback is race-free. Tag is opaque correlation
// state for the caller.
type Job struct {
	Qs []keys.Query
	RS *keys.ResultSet
	// Tag carries caller state (e.g. completion futures) through the
	// pipeline untouched.
	Tag any
}

// pipeSlot is one stage-A workspace. Ownership alternates between the
// stages via channels: stage A fills it, stage B drains it.
type pipeSlot struct {
	tf        *Transformer
	st        *stats.Batch
	rs        *keys.ResultSet
	job       *Job
	remaining []keys.Query

	// Scan/RMW batches carry their epoch plan through the handoff; the
	// per-epoch transform still runs in stage A (it is tree- and
	// cache-independent), only execution waits for stage B.
	extended bool
	plan     batchPlan
	plans    [][]keys.Query
}

// initPipeline lazily builds the transform pool and the double-buffered
// slots. Called from ProcessStream only (single-caller, like Run).
func (e *Engine) initPipeline() {
	if e.tfPool != nil {
		return
	}
	e.tfPool = bsp.NewPool(e.pool.N())
	e.slots = make([]*pipeSlot, 2)
	for i := range e.slots {
		tf := NewTransformer(e.tfPool)
		tf.CompareSort = e.cfg.CompareSort
		e.slots[i] = &pipeSlot{
			tf: tf,
			st: stats.NewBatch(e.tfPool.N()),
			rs: keys.NewResultSet(0),
		}
	}
}

// ProcessStream consumes batches from in until it is closed, processing
// each with semantics identical to calling ProcessBatch in arrival
// order, and hands every finished job to emit (in order). With
// EngineConfig.Pipeline set, the transform of the next batch overlaps
// the tree stages of the current one; otherwise batches run serially.
//
// ProcessStream must not be called concurrently with itself or with
// ProcessBatch. Stats() reflects the most recently tree-staged batch.
func (e *Engine) ProcessStream(in <-chan *Job, emit func(*Job)) {
	if !e.cfg.Pipeline {
		rs := keys.NewResultSet(0)
		for job := range in {
			if job.RS == nil {
				job.RS = rs
			}
			job.RS.Reset(len(job.Qs))
			e.ProcessBatch(job.Qs, job.RS)
			emit(job)
		}
		return
	}

	e.initPipeline()
	free := make(chan *pipeSlot, len(e.slots))
	for _, s := range e.slots {
		free <- s
	}
	handoff := make(chan *pipeSlot, 1)

	go func() {
		for job := range in {
			slot := <-free
			slot.job = job
			if job.RS == nil {
				job.RS = slot.rs
			}
			job.RS.Reset(len(job.Qs))
			e.transformStage(slot)
			handoff <- slot
		}
		close(handoff)
	}()

	for slot := range handoff {
		if e.met == nil {
			e.treeStage(slot)
		} else {
			// Pipelined batch wall is the tree-stage wall: the transform
			// overlapped the previous batch, and its time is already in
			// the slot's stage timings folded by treeStage.
			start := e.met.reg.Now()
			e.treeStage(slot)
			e.met.recordBatch(e.st, e.met.reg.Since(start))
		}
		job := slot.job
		slot.job = nil
		emit(job)
		// Only now may stage A reuse the slot (and its lent ResultSet).
		// The job itself is the caller's again — no accesses past emit.
		free <- slot
	}
}

// transformStage runs stage A for the slot's job on the transform pool:
// Original mode pre-sorts the batch; the QTrans modes run the full
// intra-batch transform, writing inferred answers into the job's
// ResultSet. No tree or cache access happens here.
func (e *Engine) transformStage(slot *pipeSlot) {
	job := slot.job
	st := slot.st
	st.Reset()
	st.BatchSize = len(job.Qs)
	slot.remaining = nil
	slot.extended = false
	slot.plans = nil
	if len(job.Qs) == 0 {
		return
	}

	if scan, rmw := hasScanOrRMW(job.Qs); scan || rmw {
		slot.extended = true
		if scan {
			slot.plan = planEpochs(job.Qs)
		} else {
			slot.plan = batchPlan{epochs: [][]keys.Query{job.Qs}, scans: [][]keys.Query{nil}}
		}
		if e.cfg.Mode != Original {
			slot.plans = slot.tf.TransformEpochs(slot.plan.epochs, len(job.Qs), job.RS, st, e.cfg.Mode == SimIntra)
		}
		return
	}

	switch e.cfg.Mode {
	case Original:
		if !e.cfg.Palm.PreSorted {
			sw := st.Timer(stats.StageSort)
			if e.cfg.CompareSort {
				e.tfPool.SortQueries(job.Qs)
			} else {
				e.tfPool.RadixSortQueries(job.Qs)
			}
			sw.Stop()
		}
		slot.remaining = job.Qs
	case SimIntra:
		slot.remaining = slot.tf.TransformSim(job.Qs, job.RS, st)
	default: // Intra, IntraInter
		slot.remaining = slot.tf.Transform(job.Qs, job.RS, st)
	}
}

// treeStage runs stage B for the slot's job on the engine's pool: the
// top-K cache pass (serialized here, in batch order — the handoff
// rule), the PALM tree stages, and the representative broadcast. The
// engine's Stats() block is rebuilt from the slot's transform timings
// plus this stage's own.
func (e *Engine) treeStage(slot *pipeSlot) {
	job := slot.job
	e.st.Reset()
	slot.st.AddTo(e.st)
	if len(job.Qs) == 0 {
		return
	}

	// Batch application: gate + commit point, exactly as in
	// ProcessBatch. treeStage runs strictly in batch order, so commits
	// are logged in arrival order even though transforms overlap.
	if e.gate != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}

	if slot.extended {
		// Scan/RMW batch: drain the cache, log all surviving point
		// queries as one record, then run epochs and scan groups in
		// order — same sequence as processScanRMW, with the transform
		// already done in stage A.
		e.drainCache()
		if !e.commitPlan(slot.plan, slot.plans) {
			return
		}
		e.executePlan(slot.plan, slot.plans, job.RS)
		if e.cfg.Mode != Original {
			slot.tf.Broadcast(job.RS)
		}
		return
	}

	if e.cfg.Mode == Original {
		if !e.commit(job.Qs) {
			return
		}
		e.st.RemainingQueries = len(job.Qs)
		e.proc.ProcessBatchSorted(job.Qs, job.RS)
		e.mergeProcStats(e.st)
		return
	}

	remaining := slot.remaining
	if !e.commit(remaining) {
		return
	}
	if e.topK != nil {
		sw := e.st.Timer(stats.StageCache)
		remaining = e.cachePass(remaining, job.RS, &slot.tf.Router, e.st)
		sw.Stop()
	}
	e.st.RemainingQueries = len(remaining)
	e.proc.ProcessTransformed(remaining, job.RS)
	slot.tf.Broadcast(job.RS)
	e.mergeProcStats(e.st)
}
