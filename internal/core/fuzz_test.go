package core

import (
	"testing"

	"repro/internal/keys"
)

// decodeQueries turns fuzz bytes into a query sequence over a small
// key space (two bytes per query: op selector, key).
func decodeQueries(data []byte) []keys.Query {
	var qs []keys.Query
	for i := 0; i+1 < len(data); i += 2 {
		k := keys.Key(data[i+1] % 16)
		switch data[i] % 3 {
		case 0:
			qs = append(qs, keys.Search(k))
		case 1:
			qs = append(qs, keys.Insert(k, keys.Value(data[i])<<4|keys.Value(i)))
		default:
			qs = append(qs, keys.Delete(k))
		}
	}
	return keys.Number(qs)
}

// FuzzQSATEquivalence checks, for arbitrary query sequences, that
// one-pass QSAT's inferred answers and surviving queries replay to the
// exact serial semantics, and that SimQSAT agrees with it.
func FuzzQSATEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 0, 1})
	f.Add([]byte{2, 5, 0, 5, 1, 5, 0, 5, 2, 5, 0, 5})
	f.Add([]byte("interleaved-defines-and-uses"))

	f.Fuzz(func(t *testing.T, data []byte) {
		qs := decodeQueries(data)
		if len(qs) == 0 {
			return
		}
		want, _ := EvaluateReference(qs, map[keys.Key]keys.Value{})

		// One-pass QSAT + replay.
		rs := keys.NewResultSet(len(qs))
		e, router := runQSATSeq(qs, rs)
		store := map[keys.Key]keys.Value{}
		for _, q := range e.Out {
			switch q.Op {
			case keys.OpSearch:
				v, ok := store[q.Key]
				router.Resolve(rs, q.Idx, v, ok)
			case keys.OpInsert:
				store[q.Key] = q.Value
			case keys.OpDelete:
				delete(store, q.Key)
			}
		}
		for pos, w := range want {
			g, ok := rs.Get(qs[pos].Idx)
			if !ok || g.Found != w.Found || (w.Found && g.Value != w.Value) {
				t.Fatalf("one-pass: query %d got %+v (%v), want %+v", pos, g, ok, w)
			}
		}

		// SimQSAT + replay must agree too.
		var simRouter Router
		simRouter.Reset(len(qs))
		simRS := keys.NewResultSet(len(qs))
		out, reps, _ := SimQSAT(qs, &simRouter, simRS)
		keys.SortByKey(out)
		simStore := map[keys.Key]keys.Value{}
		for _, q := range out {
			switch q.Op {
			case keys.OpSearch:
				v, ok := simStore[q.Key]
				simRS.Set(q.Idx, v, ok)
			case keys.OpInsert:
				simStore[q.Key] = q.Value
			case keys.OpDelete:
				delete(simStore, q.Key)
			}
		}
		for _, rep := range reps {
			simRouter.Broadcast(simRS, rep)
		}
		for pos, w := range want {
			g, ok := simRS.Get(qs[pos].Idx)
			if !ok || g.Found != w.Found || (w.Found && g.Value != w.Value) {
				t.Fatalf("sim: query %d got %+v (%v), want %+v", pos, g, ok, w)
			}
		}
		if len(store) != len(simStore) {
			t.Fatalf("final stores diverge: %d vs %d", len(store), len(simStore))
		}
		for k, v := range store {
			if simStore[k] != v {
				t.Fatalf("final stores diverge at key %d", k)
			}
		}
	})
}
