package core

import "repro/internal/keys"

// This file implements the "Alternative Solution" discussed in §IV-E:
// instead of reasoning about query semantics symbolically (one-pass
// QSAT), redundancy can be eliminated by *simulating* the query
// evaluations on a different data structure — a scratch hash map —
// and emitting only the queries whose effects survive. The paper notes
// two drawbacks that the ablation benchmarks quantify: every query
// must still be "evaluated" (against the simulation structure), and no
// query can be skipped outright. SimQSAT exists as the experimental
// baseline for that comparison; the Engine always uses one-pass QSAT.

// simState is the simulated per-key state.
type simState struct {
	// def is the surviving defining query for the key (valid when
	// hasDef). It is updated in place as later defines overwrite it.
	def    keys.Query
	hasDef bool
	// rep is the surviving representative search (valid when hasRep);
	// only searches that precede every define survive.
	rep    int32
	hasRep bool
}

// SimQSAT eliminates redundant and unnecessary queries by simulating
// the batch on a hash map, producing the same reduced semantics as the
// symbolic QSAT: per key at most one representative search (answered
// from the tree later, broadcast through router) and one defining
// query, with all other searches answered by inference. The input
// need NOT be sorted — the simulation structure provides random
// access — which is the approach's one advantage; the output is
// emitted in first-touch key order and then must be sorted by the
// caller before PALM processing.
func SimQSAT(qs []keys.Query, router *Router, rs *keys.ResultSet) (out []keys.Query, reps []int32, inferred int) {
	sim := make(map[keys.Key]*simState, len(qs)/2)
	order := make([]keys.Key, 0, len(qs)/2)

	for _, q := range qs {
		st, ok := sim[q.Key]
		if !ok {
			st = &simState{}
			sim[q.Key] = st
			order = append(order, q.Key)
		}
		switch q.Op {
		case keys.OpSearch:
			if st.hasDef {
				// Simulated evaluation answers the search immediately.
				if st.def.Op == keys.OpInsert {
					inferred += router.Resolve(rs, q.Idx, st.def.Value, true)
				} else {
					inferred += router.Resolve(rs, q.Idx, 0, false)
				}
				continue
			}
			if st.hasRep {
				router.Append(st.rep, q.Idx)
			} else {
				st.rep, st.hasRep = q.Idx, true
			}
		default:
			st.def, st.hasDef = q, true
		}
	}

	for _, k := range order {
		st := sim[k]
		if st.hasRep {
			out = append(out, keys.Query{Op: keys.OpSearch, Key: k, Idx: st.rep})
			reps = append(reps, st.rep)
		}
		if st.hasDef {
			out = append(out, st.def)
		}
	}
	return out, reps, inferred
}
