package core

import "repro/internal/keys"

// This file implements the "Alternative Solution" discussed in §IV-E:
// instead of reasoning about query semantics symbolically (one-pass
// QSAT), redundancy can be eliminated by *simulating* the query
// evaluations on a different data structure — a scratch hash map —
// and emitting only the queries whose effects survive. The paper notes
// two drawbacks that the ablation benchmarks quantify: every query
// must still be "evaluated" (against the simulation structure), and no
// query can be skipped outright. SimQSAT exists as the experimental
// baseline for that comparison; the Engine always uses one-pass QSAT.

// simState is the simulated per-key state.
type simState struct {
	// def is the surviving defining query for the key (valid when
	// hasDef). It is updated in place as later defines overwrite it.
	def    keys.Query
	hasDef bool
	// rep is the surviving representative search (valid when hasRep);
	// only searches that precede every define survive.
	rep    int32
	hasRep bool
	// survivors holds RMW queries over unknown pre-batch state (their
	// results need the tree) and searches that follow them (tagged
	// LeafAnswer), in arrival order. While unknownPresent and !hasDef
	// the key is present but its value is unknown.
	survivors      []keys.Query
	unknownPresent bool
}

// SimQSAT eliminates redundant and unnecessary queries by simulating
// the batch on a hash map, producing the same reduced semantics as the
// symbolic QSAT: per key at most one representative search (answered
// from the tree later, broadcast through router) and one defining
// query, with all other searches answered by inference. The input
// need NOT be sorted — the simulation structure provides random
// access — which is the approach's one advantage; the output is
// emitted in first-touch key order and then must be sorted by the
// caller before PALM processing.
func SimQSAT(qs []keys.Query, router *Router, rs *keys.ResultSet) (out []keys.Query, reps []int32, inferred int) {
	sim := make(map[keys.Key]*simState, len(qs)/2)
	order := make([]keys.Key, 0, len(qs)/2)

	for _, q := range qs {
		st, ok := sim[q.Key]
		if !ok {
			st = &simState{}
			sim[q.Key] = st
			order = append(order, q.Key)
		}
		switch q.Op {
		case keys.OpSearch:
			if st.hasDef {
				// Simulated evaluation answers the search immediately.
				if st.def.Op == keys.OpInsert {
					inferred += router.Resolve(rs, q.Idx, st.def.Value, true)
				} else {
					inferred += router.Resolve(rs, q.Idx, 0, false)
				}
				continue
			}
			if st.unknownPresent {
				// A surviving RMW precedes this search: the key is
				// present but its value needs the tree. Stage 2 answers
				// it at the leaf after applying that RMW.
				q.LeafAnswer = true
				st.survivors = append(st.survivors, q)
				continue
			}
			if st.hasRep {
				router.Append(st.rep, q.Idx)
			} else {
				st.rep, st.hasRep = q.Idx, true
			}
		case keys.OpRMW:
			if st.hasDef {
				// Known simulated state: resolve the result and fold
				// the transform into the surviving define.
				if st.def.Op == keys.OpInsert {
					inferred += router.Resolve(rs, q.Idx, st.def.Value, true)
					if q.RMW == keys.RMWAdd {
						st.def.Value += q.Value
					}
				} else {
					inferred += router.Resolve(rs, q.Idx, 0, false)
					st.def = keys.Query{Op: keys.OpInsert, Key: q.Key, Value: q.Value, Idx: q.Idx}
				}
				continue
			}
			// Unknown pre-batch state: the RMW survives. Both kinds
			// leave the key present afterwards.
			st.survivors = append(st.survivors, q)
			st.unknownPresent = true
		default:
			st.def, st.hasDef = q, true
		}
	}

	for _, k := range order {
		st := sim[k]
		if st.hasRep {
			out = append(out, keys.Query{Op: keys.OpSearch, Key: k, Idx: st.rep})
			reps = append(reps, st.rep)
		}
		out = append(out, st.survivors...)
		if st.hasDef {
			out = append(out, st.def)
		}
	}
	return out, reps, inferred
}
