package core

import (
	"fmt"
	"strings"

	"repro/internal/keys"
)

// Report breaks a batch's optimization opportunities down into the
// three categories of §III-C, quantifying what QTrans will eliminate
// before the batch is processed. Explain is an analysis tool: it does
// not transform anything.
type Report struct {
	// Total is the batch size.
	Total int
	// Redundancy counts repeated leading searches collapsed into a
	// representative (§III-C "query redundancy", Fig. 5 ❶).
	Redundancy int
	// Overwriting counts defining queries made dead by a later define
	// on the same key with no intervening surviving search (Fig. 5 ❷).
	Overwriting int
	// Inference counts searches answered from an earlier in-batch
	// define instead of the tree (Fig. 5 ❸).
	Inference int
	// Surviving counts the queries that must still be evaluated.
	Surviving int
	// DistinctKeys counts distinct keys in the batch.
	DistinctKeys int
}

// Eliminated returns the total number of queries removed.
func (r Report) Eliminated() int { return r.Redundancy + r.Overwriting + r.Inference }

// ReductionRatio returns the eliminated fraction, in [0, 1].
func (r Report) ReductionRatio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Eliminated()) / float64(r.Total)
}

// String renders the report like the paper's running-example prose.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d queries over %d distinct keys: ", r.Total, r.DistinctKeys)
	fmt.Fprintf(&sb, "%d eliminated (%.1f%%) — %d redundant searches, %d overwritten defines, %d inferred returns; %d survive",
		r.Eliminated(), 100*r.ReductionRatio(), r.Redundancy, r.Overwriting, r.Inference, r.Surviving)
	return sb.String()
}

// Explain classifies every query in the batch into §III-C's categories
// without evaluating or transforming anything. The input need not be
// sorted and is not modified.
func Explain(qs []keys.Query) Report {
	r := Report{Total: len(qs)}

	// Per-key streaming state, mirroring the one-pass QSAT semantics.
	// Defining queries include RMWs: a run of defines and RMWs on one
	// key folds into a single synthesized final define, so all but one
	// count as overwritten. An RMW on a key whose in-batch state is
	// unknown leaves the value "present but unknown"; searches behind it
	// survive (answered at the leaf), neither redundant nor inferred.
	type state struct {
		leadingSearches int  // searches before any define
		defines         int  // defining queries seen (insert/delete/RMW)
		inferred        int  // searches answered from known in-batch state
		leafAnswered    int  // searches surviving behind an unknown-state RMW
		unknownVal      bool // state is "present, value unknown"
	}
	perKey := map[keys.Key]*state{}
	scans := 0
	for _, q := range qs {
		if q.Op == keys.OpScan {
			// Scans are range reads: they fence, but Explain's per-key
			// model cannot eliminate them. They always survive.
			scans++
			continue
		}
		st := perKey[q.Key]
		if st == nil {
			st = &state{}
			perKey[q.Key] = st
		}
		switch {
		case q.Op == keys.OpSearch && st.defines == 0:
			st.leadingSearches++
		case q.Op == keys.OpSearch && st.unknownVal:
			st.leafAnswered++
		case q.Op == keys.OpSearch:
			st.inferred++
		case q.Op == keys.OpRMW:
			if st.defines == 0 || st.unknownVal {
				st.unknownVal = true
			}
			st.defines++
		default: // insert, delete: state fully known again
			st.defines++
			st.unknownVal = false
		}
	}

	r.DistinctKeys = len(perKey)
	r.Surviving += scans
	for _, st := range perKey {
		if st.leadingSearches > 0 {
			r.Redundancy += st.leadingSearches - 1 // one representative survives
			r.Surviving++
		}
		if st.defines > 0 {
			r.Overwriting += st.defines - 1 // folded into one final define
			r.Surviving++
		}
		r.Inference += st.inferred
		r.Surviving += st.leafAnswered
	}
	return r
}
