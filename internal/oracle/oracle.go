// Package oracle provides a trivially-correct reference model of the
// B+ tree query semantics (§II-A), used as the ground truth in
// differential tests: every processor in this repository — serial tree,
// lock-crabbing tree, PALM, PALM+QTrans, PALM+QTrans+cache — must leave
// the store in the same state and return the same search results as the
// oracle for any query sequence.
package oracle

import (
	"sort"

	"repro/internal/keys"
)

// Oracle is a map-backed key-value store with B+ tree query semantics.
// Not safe for concurrent use.
type Oracle struct {
	m map[keys.Key]keys.Value
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{m: make(map[keys.Key]keys.Value)}
}

// Len returns the number of stored pairs.
func (o *Oracle) Len() int { return len(o.m) }

// Apply evaluates one query, recording a search result into rs when
// non-nil.
func (o *Oracle) Apply(q keys.Query, rs *keys.ResultSet) {
	switch q.Op {
	case keys.OpSearch:
		v, ok := o.m[q.Key]
		if rs != nil {
			rs.Set(q.Idx, v, ok)
		}
	case keys.OpInsert:
		o.m[q.Key] = q.Value
	case keys.OpDelete:
		delete(o.m, q.Key)
	}
}

// ApplyAll evaluates a query sequence in order.
func (o *Oracle) ApplyAll(qs []keys.Query, rs *keys.ResultSet) {
	for _, q := range qs {
		o.Apply(q, rs)
	}
}

// Get looks a key up directly.
func (o *Oracle) Get(k keys.Key) (keys.Value, bool) {
	v, ok := o.m[k]
	return v, ok
}

// Dump returns all pairs in ascending key order, matching the format of
// btree.Tree.Dump for direct comparison.
func (o *Oracle) Dump() (ks []keys.Key, vs []keys.Value) {
	ks = make([]keys.Key, 0, len(o.m))
	for k := range o.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	vs = make([]keys.Value, len(ks))
	for i, k := range ks {
		vs[i] = o.m[k]
	}
	return ks, vs
}
