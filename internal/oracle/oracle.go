// Package oracle provides a trivially-correct reference model of the
// B+ tree query semantics (§II-A), used as the ground truth in
// differential tests: every processor in this repository — serial tree,
// lock-crabbing tree, PALM, PALM+QTrans, PALM+QTrans+cache — must leave
// the store in the same state and return the same search results as the
// oracle for any query sequence.
package oracle

import (
	"sort"

	"repro/internal/keys"
)

// Oracle is a map-backed key-value store with B+ tree query semantics.
// Not safe for concurrent use.
type Oracle struct {
	m map[keys.Key]keys.Value
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{m: make(map[keys.Key]keys.Value)}
}

// Len returns the number of stored pairs.
func (o *Oracle) Len() int { return len(o.m) }

// Apply evaluates one query, recording a search/scan/RMW result into
// rs when non-nil. Scan rows go through the ResultSet's scan storage
// (EnsureScans is called here, so serial use needs no setup).
func (o *Oracle) Apply(q keys.Query, rs *keys.ResultSet) {
	switch q.Op {
	case keys.OpSearch:
		v, ok := o.m[q.Key]
		if rs != nil {
			rs.Set(q.Idx, v, ok)
		}
	case keys.OpInsert:
		o.m[q.Key] = q.Value
	case keys.OpDelete:
		delete(o.m, q.Key)
	case keys.OpScan:
		rows := o.Scan(q.Key, q.Key2, q.Value)
		if rs != nil {
			rs.EnsureScans()
			rs.SetScan(q.Idx, rows)
		}
	case keys.OpRMW:
		old, found := o.m[q.Key]
		switch q.RMW {
		case keys.RMWAdd:
			o.m[q.Key] = old + q.Value
		case keys.RMWSetIfAbsent:
			if !found {
				o.m[q.Key] = q.Value
			}
		}
		if rs != nil {
			rs.Set(q.Idx, old, found)
		}
	}
}

// Scan returns all present pairs with lo <= key < hi in ascending key
// order, truncated to the first limit rows (limit 0 = unlimited).
func (o *Oracle) Scan(lo, hi keys.Key, limit keys.Value) []keys.KV {
	var rows []keys.KV
	for k, v := range o.m {
		if k >= lo && k < hi {
			rows = append(rows, keys.KV{Key: k, Value: v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	if limit > 0 && keys.Value(len(rows)) > limit {
		rows = rows[:limit]
	}
	return rows
}

// ApplyAll evaluates a query sequence in order.
func (o *Oracle) ApplyAll(qs []keys.Query, rs *keys.ResultSet) {
	for _, q := range qs {
		o.Apply(q, rs)
	}
}

// Get looks a key up directly.
func (o *Oracle) Get(k keys.Key) (keys.Value, bool) {
	v, ok := o.m[k]
	return v, ok
}

// Dump returns all pairs in ascending key order, matching the format of
// btree.Tree.Dump for direct comparison.
func (o *Oracle) Dump() (ks []keys.Key, vs []keys.Value) {
	ks = make([]keys.Key, 0, len(o.m))
	for k := range o.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	vs = make([]keys.Value, len(ks))
	for i, k := range ks {
		vs[i] = o.m[k]
	}
	return ks, vs
}
