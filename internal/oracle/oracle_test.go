package oracle

import (
	"testing"

	"repro/internal/keys"
)

func TestApplySemantics(t *testing.T) {
	o := New()
	qs := keys.Number([]keys.Query{
		keys.Search(1),     // 0: not found
		keys.Insert(1, 10), // 1
		keys.Search(1),     // 2: 10
		keys.Insert(1, 20), // 3: update
		keys.Search(1),     // 4: 20
		keys.Delete(1),     // 5
		keys.Search(1),     // 6: not found
		keys.Delete(1),     // 7: no-op
	})
	rs := keys.NewResultSet(len(qs))
	o.ApplyAll(qs, rs)
	if r, _ := rs.Get(0); r.Found {
		t.Error("initial search found")
	}
	if r, _ := rs.Get(2); !r.Found || r.Value != 10 {
		t.Errorf("search = %+v", r)
	}
	if r, _ := rs.Get(4); !r.Found || r.Value != 20 {
		t.Errorf("search after update = %+v", r)
	}
	if r, _ := rs.Get(6); r.Found {
		t.Error("search after delete found")
	}
	if o.Len() != 0 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestGetAndDumpSorted(t *testing.T) {
	o := New()
	for _, k := range []keys.Key{5, 1, 9, 3} {
		o.Apply(keys.Insert(k, keys.Value(k*10)), nil)
	}
	if v, ok := o.Get(9); !ok || v != 90 {
		t.Fatalf("Get(9) = %d,%v", v, ok)
	}
	if _, ok := o.Get(2); ok {
		t.Fatal("Get(2) found")
	}
	ks, vs := o.Dump()
	want := []keys.Key{1, 3, 5, 9}
	for i, k := range want {
		if ks[i] != k || vs[i] != keys.Value(k*10) {
			t.Fatalf("Dump = %v %v", ks, vs)
		}
	}
}

func TestApplyNilResultSet(t *testing.T) {
	o := New()
	o.Apply(keys.Search(1), nil) // must not panic
	o.Apply(keys.Insert(1, 1), nil)
	o.Apply(keys.Delete(1), nil)
}
