package oracle

import (
	"testing"

	"repro/internal/keys"
)

func TestApplySemantics(t *testing.T) {
	o := New()
	qs := keys.Number([]keys.Query{
		keys.Search(1),     // 0: not found
		keys.Insert(1, 10), // 1
		keys.Search(1),     // 2: 10
		keys.Insert(1, 20), // 3: update
		keys.Search(1),     // 4: 20
		keys.Delete(1),     // 5
		keys.Search(1),     // 6: not found
		keys.Delete(1),     // 7: no-op
	})
	rs := keys.NewResultSet(len(qs))
	o.ApplyAll(qs, rs)
	if r, _ := rs.Get(0); r.Found {
		t.Error("initial search found")
	}
	if r, _ := rs.Get(2); !r.Found || r.Value != 10 {
		t.Errorf("search = %+v", r)
	}
	if r, _ := rs.Get(4); !r.Found || r.Value != 20 {
		t.Errorf("search after update = %+v", r)
	}
	if r, _ := rs.Get(6); r.Found {
		t.Error("search after delete found")
	}
	if o.Len() != 0 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestGetAndDumpSorted(t *testing.T) {
	o := New()
	for _, k := range []keys.Key{5, 1, 9, 3} {
		o.Apply(keys.Insert(k, keys.Value(k*10)), nil)
	}
	if v, ok := o.Get(9); !ok || v != 90 {
		t.Fatalf("Get(9) = %d,%v", v, ok)
	}
	if _, ok := o.Get(2); ok {
		t.Fatal("Get(2) found")
	}
	ks, vs := o.Dump()
	want := []keys.Key{1, 3, 5, 9}
	for i, k := range want {
		if ks[i] != k || vs[i] != keys.Value(k*10) {
			t.Fatalf("Dump = %v %v", ks, vs)
		}
	}
}

func TestApplyNilResultSet(t *testing.T) {
	o := New()
	o.Apply(keys.Search(1), nil) // must not panic
	o.Apply(keys.Insert(1, 1), nil)
	o.Apply(keys.Delete(1), nil)
	o.Apply(keys.Scan(0, 10, 0), nil)
	o.Apply(keys.AddDelta(1, 1), nil)
	o.Apply(keys.SetIfAbsent(2, 2), nil)
}

// wantRows compares a scan's rows and its point result against the
// expected key list (values follow the k*10 fill convention).
func wantRows(t *testing.T, rs *keys.ResultSet, idx int32, want []keys.Key) {
	t.Helper()
	rows, ok := rs.ScanRows(idx)
	if !ok {
		t.Fatalf("scan %d: no rows recorded", idx)
	}
	if len(rows) != len(want) {
		t.Fatalf("scan %d: %d rows, want %d (%v)", idx, len(rows), len(want), rows)
	}
	for i, k := range want {
		if rows[i].Key != k || rows[i].Value != keys.Value(k*10) {
			t.Fatalf("scan %d row %d = %+v, want key %d value %d", idx, i, rows[i], k, k*10)
		}
	}
	r, _ := rs.Get(idx)
	if int(r.Value) != len(want) || r.Found != (len(want) > 0) {
		t.Fatalf("scan %d point result = %+v, want count %d", idx, r, len(want))
	}
}

func TestScanSemantics(t *testing.T) {
	o := New()
	for _, k := range []keys.Key{2, 4, 6, 8, 10} {
		o.Apply(keys.Insert(k, keys.Value(k*10)), nil)
	}
	qs := keys.Number([]keys.Query{
		keys.Scan(0, 100, 0),  // 0: all five
		keys.Scan(4, 8, 0),    // 1: half-open: 4 and 6, not 8
		keys.Scan(5, 5, 0),    // 2: empty range (lo == hi)
		keys.Scan(8, 4, 0),    // 3: inverted range: empty
		keys.Scan(11, 100, 0), // 4: beyond last key: empty
		keys.Scan(0, 100, 3),  // 5: limit truncates to first three
		keys.Scan(0, 100, 99), // 6: limit above row count: all five
		keys.Scan(6, 7, 0),    // 7: single-key hit
	})
	rs := keys.NewResultSet(len(qs))
	o.ApplyAll(qs, rs)
	wantRows(t, rs, 0, []keys.Key{2, 4, 6, 8, 10})
	wantRows(t, rs, 1, []keys.Key{4, 6})
	wantRows(t, rs, 2, nil)
	wantRows(t, rs, 3, nil)
	wantRows(t, rs, 4, nil)
	wantRows(t, rs, 5, []keys.Key{2, 4, 6})
	wantRows(t, rs, 6, []keys.Key{2, 4, 6, 8, 10})
	wantRows(t, rs, 7, []keys.Key{6})
}

func TestRMWSemantics(t *testing.T) {
	o := New()
	qs := keys.Number([]keys.Query{
		keys.AddDelta(1, 5),     // 0: absent -> 0+5, result (0, false)
		keys.AddDelta(1, 3),     // 1: 5+3, result (5, true)
		keys.Search(1),          // 2: 8
		keys.SetIfAbsent(2, 7),  // 3: absent -> inserts, result (0, false)
		keys.SetIfAbsent(2, 99), // 4: present -> no-op, result (7, true)
		keys.Search(2),          // 5: 7
		keys.Delete(1),          // 6
		keys.AddDelta(1, 2),     // 7: delete resets the sum, result (0, false)
		keys.Search(1),          // 8: 2
	})
	rs := keys.NewResultSet(len(qs))
	o.ApplyAll(qs, rs)
	check := func(idx int32, v keys.Value, found bool) {
		t.Helper()
		r, ok := rs.Get(idx)
		if !ok || r.Found != found || r.Value != v {
			t.Fatalf("query %d = %+v (%v), want (%d,%v)", idx, r, ok, v, found)
		}
	}
	check(0, 0, false)
	check(1, 5, true)
	check(2, 8, true)
	check(3, 0, false)
	check(4, 7, true)
	check(5, 7, true)
	check(7, 0, false)
	check(8, 2, true)
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
}

// TestScanSeesEarlierWrites pins the in-batch visibility rule: a scan
// observes every write sequenced before it in the same batch — inserts
// appear, deletes disappear, RMW results land — and none sequenced
// after it.
func TestScanSeesEarlierWrites(t *testing.T) {
	o := New()
	o.Apply(keys.Insert(3, 30), nil)
	o.Apply(keys.Insert(5, 50), nil)
	qs := keys.Number([]keys.Query{
		keys.Scan(0, 10, 0),  // 0: pre-state {3,5}
		keys.Insert(4, 40),   // 1
		keys.Delete(5),       // 2
		keys.AddDelta(3, 12), // 3: 30 -> 42
		keys.Scan(0, 10, 0),  // 4: {3:42, 4:40}
		keys.Insert(6, 60),   // 5: after the scan — invisible to it
	})
	rs := keys.NewResultSet(len(qs))
	o.ApplyAll(qs, rs)

	wantRows(t, rs, 0, []keys.Key{3, 5})
	rows, _ := rs.ScanRows(4)
	want := []keys.KV{{Key: 3, Value: 42}, {Key: 4, Value: 40}}
	if len(rows) != len(want) {
		t.Fatalf("scan 4 rows = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("scan 4 row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

// TestScanLimitAppliesAfterOrdering pins that the limit keeps the
// lowest keys (ascending order first, then truncate), not an arbitrary
// subset.
func TestScanLimitAppliesAfterOrdering(t *testing.T) {
	o := New()
	for _, k := range []keys.Key{9, 1, 7, 3, 5} {
		o.Apply(keys.Insert(k, keys.Value(k*10)), nil)
	}
	rows := o.Scan(0, 100, 2)
	if len(rows) != 2 || rows[0].Key != 1 || rows[1].Key != 3 {
		t.Fatalf("Scan limit 2 = %v, want keys 1,3", rows)
	}
}
