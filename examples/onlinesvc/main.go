// Online serving (§VI-D): the batch engine behind a per-query,
// latency-bounded service interface. Concurrent clients issue
// individual gets/puts; the service batches them transparently, so the
// deployment gets batch-level QTrans elimination with single-query
// ergonomics and a bounded queueing delay.
//
// Run with: go run ./examples/onlinesvc [-clients 8] [-ops 5000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/qtrans"
)

func main() {
	var (
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		ops      = flag.Int("ops", 5000, "operations per client")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "batching deadline")
		maxBatch = flag.Int("maxbatch", 4096, "batching size cap")
	)
	flag.Parse()

	db, err := qtrans.Open(qtrans.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Preload a store and warm the cache with its hottest keys.
	gen := workload.NewZipfian(1<<18, 0.99)
	r := rand.New(rand.NewSource(1))
	seed := qtrans.NewBatch()
	for i := 0; i < 100_000; i++ {
		k := qtrans.Key(gen.Key(r))
		seed.Insert(k, qtrans.Value(k))
	}
	db.Run(seed)
	hot := make([]qtrans.Key, 1000)
	for i := range hot {
		hot[i] = qtrans.Key(i) // zipfian rank order: low keys are hottest
	}
	db.Warm(hot)

	svc := db.Serve(qtrans.ServiceOptions{MaxBatch: *maxBatch, MaxDelay: *maxDelay})
	defer svc.Close()

	var (
		wg       sync.WaitGroup
		served   int64
		misses   int64
		totalLat int64 // nanoseconds
	)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c) + 100))
			for i := 0; i < *ops; i++ {
				k := qtrans.Key(gen.Key(r))
				opStart := time.Now()
				if r.Intn(4) == 0 {
					if err := svc.Put(k, qtrans.Value(i)); err != nil {
						log.Fatal(err)
					}
				} else {
					_, found, err := svc.Get(k)
					if err != nil {
						log.Fatal(err)
					}
					if !found {
						atomic.AddInt64(&misses, 1)
					}
				}
				atomic.AddInt64(&totalLat, int64(time.Since(opStart)))
				atomic.AddInt64(&served, 1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("served %d ops from %d clients in %v\n", served, *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput:   %.0f ops/s\n", float64(served)/elapsed.Seconds())
	fmt.Printf("  mean latency: %v (deadline %v)\n",
		(time.Duration(totalLat) / time.Duration(served)).Round(time.Microsecond), *maxDelay)
	fmt.Printf("  not-found:    %.1f%%\n", 100*float64(misses)/float64(served))
}
