// YCSB-style cloud serving workload (the paper's §VI "Realistic Data"
// evaluation): a key-value store indexed by a B+ tree serving skewed
// read/update traffic, comparing the original PALM pipeline against
// the QTrans-optimized one on ycsb-zipfian and ycsb-latest request
// distributions.
//
// Run with: go run ./examples/ycsb [-requests 200000] [-update 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/workload"
)

func main() {
	var (
		requests = flag.Int("requests", 200_000, "requests per distribution")
		records  = flag.Int("records", 50_000, "records preloaded into the store")
		batch    = flag.Int("batch", 20_000, "requests per batch")
		update   = flag.Float64("update", 0.25, "update ratio (rest are reads)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "BSP threads")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	gens := []workload.Generator{
		workload.NewScrambledZipfian(uint64(*records), 0.99),
		workload.NewLatest(uint64(*records)),
	}
	for _, gen := range gens {
		fmt.Printf("== %s: %d records, %d requests, U-%.2f ==\n",
			gen.Name(), *records, *requests, *update)
		orgQPS := run(gen, core.Original, *records, *requests, *batch, *update, *workers, *seed)
		optQPS := run(gen, core.IntraInter, *records, *requests, *batch, *update, *workers, *seed)
		fmt.Printf("  original PALM : %12.0f req/s\n", orgQPS)
		fmt.Printf("  with QTrans   : %12.0f req/s  (%.2fx)\n\n", optQPS, optQPS/orgQPS)
	}
}

func run(gen workload.Generator, mode core.Mode, records, requests, batchSize int, update float64, workers int, seed int64) float64 {
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{Workers: workers, LoadBalance: true},
		CacheCapacity: 1 << 14,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Preload the store.
	r := rand.New(rand.NewSource(seed))
	pre := make([]keys.Query, records)
	for i := range pre {
		pre[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	rs := keys.NewResultSet(records)
	eng.ProcessBatch(keys.Number(pre), rs)

	// Serve the request stream batch by batch.
	qs := make([]keys.Query, batchSize)
	var elapsed time.Duration
	served := 0
	for served < requests {
		workload.FillBatch(gen, r, qs, update)
		rs.Reset(len(qs))
		start := time.Now()
		eng.ProcessBatch(qs, rs)
		elapsed += time.Since(start)
		served += len(qs)
	}
	return float64(served) / elapsed.Seconds()
}
