// Baselines: the concurrency-scheme comparison that motivates §II-B —
// the same skewed mixed workload evaluated by four processors:
//
//  1. serial B+ tree (one thread, textbook rebalancing),
//  2. latch-crabbing concurrent B+ tree (lock-per-node, asynchronous),
//  3. PALM (latch-free BSP batches),
//  4. PALM + QTrans (this paper).
//
// All four must produce identical results; the example cross-checks
// them and prints the throughput ladder.
//
// Run with: go run ./examples/baselines [-queries 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/lockbtree"
	"repro/internal/palm"
	"repro/internal/workload"
)

func main() {
	var (
		queries = flag.Int("queries", 200_000, "total queries")
		records = flag.Int("records", 50_000, "preloaded records")
		batch   = flag.Int("batch", 20_000, "batch size for batched processors")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "threads for concurrent processors")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	gen := workload.NewSelfSimilar(uint64(*records)*2, 0.2)
	stream := workload.Batch(gen, rand.New(rand.NewSource(*seed)), *queries, 0.25)

	fmt.Printf("workload: %s, %d queries (U-0.25), %d preloaded records, %d threads\n\n",
		gen.Name(), *queries, *records, *workers)

	serialQPS, serialSum := runSerial(stream, *records)
	fmt.Printf("  1. serial B+ tree        : %12.0f q/s\n", serialQPS)

	lockQPS, lockSum := runLockTree(stream, *records, *workers)
	fmt.Printf("  2. latch-crabbing tree   : %12.0f q/s  (%.2fx serial)\n", lockQPS, lockQPS/serialQPS)

	palmQPS, palmSum := runEngine(stream, *records, *batch, *workers, core.Original)
	fmt.Printf("  3. PALM (latch-free BSP) : %12.0f q/s  (%.2fx serial)\n", palmQPS, palmQPS/serialQPS)

	optQPS, optSum := runEngine(stream, *records, *batch, *workers, core.IntraInter)
	fmt.Printf("  4. PALM + QTrans         : %12.0f q/s  (%.2fx serial, %.2fx PALM)\n",
		optQPS, optQPS/serialQPS, optQPS/palmQPS)

	// The batched processors evaluate batches as-if-serial, so their
	// final store contents must agree with the serial tree exactly.
	// The latch-crabbing run interleaves threads arbitrarily, so only
	// its cardinality-insensitive checksum basis is reported.
	if serialSum != palmSum || serialSum != optSum {
		log.Fatalf("state divergence: serial=%x palm=%x qtrans=%x", serialSum, palmSum, optSum)
	}
	fmt.Printf("\nstate checksums: serial=%x palm=%x qtrans=%x (equal), lock-crabbing=%x (interleaved order)\n",
		serialSum, palmSum, optSum, lockSum)
}

// checksum folds the store contents into an order-insensitive digest.
func checksum(ks []keys.Key, vs []keys.Value) uint64 {
	var sum uint64
	for i := range ks {
		h := uint64(ks[i])*0x9e3779b97f4a7c15 ^ uint64(vs[i])
		h ^= h >> 33
		sum += h * 0xff51afd7ed558ccd
	}
	return sum
}

func preloadQueries(records int) []keys.Query {
	pre := make([]keys.Query, records)
	for i := range pre {
		pre[i] = keys.Insert(keys.Key(i), keys.Value(i))
	}
	return keys.Number(pre)
}

func runSerial(stream []keys.Query, records int) (float64, uint64) {
	tr := btree.MustNew(0)
	for _, q := range preloadQueries(records) {
		tr.Apply(q, nil)
	}
	rs := keys.NewResultSet(len(stream))
	start := time.Now()
	tr.ApplyAll(stream, rs)
	elapsed := time.Since(start)
	ks, vs := tr.Dump()
	return float64(len(stream)) / elapsed.Seconds(), checksum(ks, vs)
}

func runLockTree(stream []keys.Query, records, workers int) (float64, uint64) {
	tr := lockbtree.New(0)
	for _, q := range preloadQueries(records) {
		tr.Apply(q, nil)
	}
	rs := keys.NewResultSet(len(stream))
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (len(stream) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []keys.Query) {
			defer wg.Done()
			for _, q := range part {
				tr.Apply(q, rs)
			}
		}(stream[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	ks, vs := tr.Dump()
	return float64(len(stream)) / elapsed.Seconds(), checksum(ks, vs)
}

func runEngine(stream []keys.Query, records, batchSize, workers int, mode core.Mode) (float64, uint64) {
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{Workers: workers, LoadBalance: true},
		CacheCapacity: 1 << 14,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	rs := keys.NewResultSet(batchSize)
	pre := preloadQueries(records)
	for lo := 0; lo < len(pre); lo += batchSize {
		hi := lo + batchSize
		if hi > len(pre) {
			hi = len(pre)
		}
		chunk := keys.Number(pre[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}
	work := append([]keys.Query(nil), stream...)
	start := time.Now()
	for lo := 0; lo < len(work); lo += batchSize {
		hi := lo + batchSize
		if hi > len(work) {
			hi = len(work)
		}
		chunk := keys.Number(work[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}
	elapsed := time.Since(start)
	eng.Flush()
	ks, vs := eng.Processor().Tree().Dump()
	return float64(len(stream)) / elapsed.Seconds(), checksum(ks, vs)
}
