// Quickstart: build a QTrans-optimized B+ tree engine, submit a batch
// of queries, and read the answers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
)

func main() {
	// An Engine is the integrated system of the paper: a PALM
	// latch-free B+ tree batch processor with the QTrans query-sequence
	// optimizer in front and an optional inter-batch top-K cache.
	eng, err := core.NewEngine(core.EngineConfig{
		Mode: core.IntraInter, // Original | Intra | IntraInter
		Palm: palm.Config{
			Order:       64,   // B+ tree fanout
			Workers:     4,    // BSP threads
			LoadBalance: true, // prefix-sum balanced shuffles
		},
		CacheCapacity: 1024, // top-K cache entries
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Queries are submitted in batches. Within a batch, semantics are
	// identical to evaluating the queries one by one in order.
	batch := keys.Number([]keys.Query{
		keys.Insert(100, 7),  // create
		keys.Search(100),     // -> 7
		keys.Insert(100, 8),  // update
		keys.Search(100),     // -> 8
		keys.Delete(100),     //
		keys.Search(100),     // -> null
		keys.Insert(200, 42), //
		keys.Search(200),     // -> 42
	})

	// Results are indexed by each query's position in the batch.
	results := keys.NewResultSet(len(batch))
	eng.ProcessBatch(batch, results)

	for i := int32(0); i < int32(results.Len()); i++ {
		if r, ok := results.Get(i); ok {
			if r.Found {
				fmt.Printf("query %d: found value %d\n", i, r.Value)
			} else {
				fmt.Printf("query %d: not found\n", i)
			}
		}
	}

	// The engine reports how much work QTrans saved.
	st := eng.Stats()
	fmt.Printf("\nbatch of %d reduced to %d tree queries (%.0f%% eliminated), %d answers inferred\n",
		st.BatchSize, st.RemainingQueries, 100*st.ReductionRatio(), st.InferredReturns)

	// In IntraInter mode dirty cache entries are flushed on demand.
	eng.Flush()
	if v, ok := eng.Processor().Tree().Search(200); ok {
		fmt.Printf("tree holds key 200 -> %d\n", v)
	}
}
