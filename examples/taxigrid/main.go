// Taxi geolocation analytics (the paper's motivating application,
// §III-B): pickup events on a 2048x2048 NYC grid are streamed into a
// B+ tree as visit counters, while analysts concurrently query hot
// cells — a read/write mix with extreme spatial skew.
//
// The example also shows the trace tooling: the generated stream is
// saved to a binary trace, reloaded, and replayed, demonstrating how a
// real CSV trip file would be imported via trace.ImportCSV.
//
// Run with: go run ./examples/taxigrid [-events 200000]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		events  = flag.Int("events", 200_000, "pickup events to stream")
		batch   = flag.Int("batch", 20_000, "events per batch")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "BSP threads")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	gen := workload.NewTaxi()
	r := rand.New(rand.NewSource(*seed))

	// Characterize the skew (the Fig. 4(a) statistic).
	frac, distinct := workload.Coverage(gen, rand.New(rand.NewSource(*seed)), 200_000, 1000)
	fmt.Printf("grid: %d cells; top 1000 cells draw %.1f%% of visits (%d distinct sampled)\n",
		gen.KeyRange(), 100*frac, distinct)

	// Build the event stream: each pickup increments a cell counter
	// (read-modify-write expressed as search+insert), and analysts
	// randomly probe cells.
	stream := make([]keys.Query, 0, *events)
	counters := map[keys.Key]keys.Value{}
	for len(stream) < *events {
		cell := gen.Key(r)
		switch r.Intn(10) {
		case 0: // analyst probe
			stream = append(stream, keys.Search(cell))
		default: // pickup: bump the counter
			counters[cell]++
			stream = append(stream, keys.Insert(cell, counters[cell]))
		}
	}
	keys.Number(stream)

	// Persist and reload through the binary trace format (stand-in for
	// importing the real trip CSV via trace.ImportCSV).
	var buf bytes.Buffer
	if err := trace.Write(&buf, stream); err != nil {
		log.Fatal(err)
	}
	traceBytes := buf.Len()
	reloaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace round trip: %d events, %d bytes\n", len(reloaded), traceBytes)

	// Replay through the QTrans engine.
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          palm.Config{Workers: *workers, LoadBalance: true},
		CacheCapacity: 1 << 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rs := keys.NewResultSet(*batch)
	var elapsed time.Duration
	reduced, total := 0, 0
	for lo := 0; lo < len(reloaded); lo += *batch {
		hi := lo + *batch
		if hi > len(reloaded) {
			hi = len(reloaded)
		}
		chunk := keys.Number(reloaded[lo:hi])
		rs.Reset(len(chunk))
		start := time.Now()
		eng.ProcessBatch(chunk, rs)
		elapsed += time.Since(start)
		reduced += eng.Stats().RemainingQueries
		total += len(chunk)
	}
	fmt.Printf("replayed %d events in %v (%.0f events/s); QTrans evaluated only %d tree queries (%.1f%% eliminated)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		reduced, 100*(1-float64(reduced)/float64(total)))

	// Report the hottest cells from the tree itself.
	eng.Flush()
	type hot struct {
		cell  keys.Key
		count keys.Value
	}
	var hots []hot
	eng.Processor().Tree().Scan(func(k keys.Key, v keys.Value) bool {
		hots = append(hots, hot{k, v})
		return true
	})
	sort.Slice(hots, func(i, j int) bool { return hots[i].count > hots[j].count })
	fmt.Println("hottest cells (cell id: visits):")
	for i := 0; i < 5 && i < len(hots); i++ {
		fmt.Printf("  %8d: %d\n", hots[i].cell, hots[i].count)
	}
}
