// Package repro's root benchmark suite regenerates every figure and
// table of the paper's evaluation as a testing.B benchmark (DESIGN.md
// §3 maps each to its figure). Each benchmark iteration processes one
// batch; the reported "qps" metric is query throughput, the quantity
// on the y-axis of Figs. 9-12, 14a and 15.
//
// Run everything: go test -bench=. -benchmem
// One figure:     go test -bench=BenchmarkFig9
// Paper-scale runs are the CLI's job (cmd/qtransbench -scale 1).
package repro

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/shard"
	"repro/internal/workload"
)

// benchScale keeps every benchmark laptop-sized; the shapes (opt vs
// org, skewed vs uniform) are what matter, not absolute numbers.
const benchScale = 0.002

// benchCase is one measured configuration.
type benchCase struct {
	dataset     string
	mode        core.Mode
	updateRatio float64
	threads     int
	batchSize   int // 0 = dataset default
}

// runBatches drives b.N batches through a fresh engine and reports
// throughput.
func runBatches(b *testing.B, c benchCase) {
	b.Helper()
	spec, err := workload.SpecByName(c.dataset, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	batchSize := c.batchSize
	if batchSize == 0 {
		batchSize = spec.BatchSize
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          c.mode,
		Palm:          palm.Config{Workers: c.threads, LoadBalance: true},
		CacheCapacity: 1 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	gen := spec.Build()
	r := rand.New(rand.NewSource(42))
	rs := keys.NewResultSet(batchSize)
	pre := workload.Prefill(gen, r, spec.UniqueKeys)
	for lo := 0; lo < len(pre); lo += batchSize {
		hi := lo + batchSize
		if hi > len(pre) {
			hi = len(pre)
		}
		chunk := keys.Number(pre[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	batch := make([]keys.Query, batchSize)
	b.ResetTimer()
	var busy time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.FillBatch(gen, r, batch, c.updateRatio)
		rs.Reset(len(batch))
		b.StartTimer()
		start := time.Now()
		eng.ProcessBatch(batch, rs)
		busy += time.Since(start)
	}
	b.StopTimer()
	if busy > 0 {
		b.ReportMetric(float64(batchSize*b.N)/busy.Seconds(), "qps")
	}
	b.ReportMetric(100*eng.Stats().ReductionRatio(), "reduction%")
}

// throughputFigure benches org vs opt across update ratios (Figs. 9,
// 11a-b, 12a).
func throughputFigure(b *testing.B, dataset string) {
	for _, u := range []float64{0, 0.25, 0.5, 0.75} {
		for _, mode := range []core.Mode{core.Original, core.IntraInter} {
			b.Run(fmt.Sprintf("U%.2f/%s", u, mode), func(b *testing.B) {
				runBatches(b, benchCase{dataset: dataset, mode: mode, updateRatio: u})
			})
		}
	}
}

// scalabilityFigure benches opt across thread counts (Figs. 10, 11c-d,
// 12b). On a single-core host the sweep still exercises the BSP
// machinery with oversubscribed workers.
func scalabilityFigure(b *testing.B, dataset string) {
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads%d", th), func(b *testing.B) {
			runBatches(b, benchCase{dataset: dataset, mode: core.IntraInter, updateRatio: 0.25, threads: th})
		})
	}
}

func BenchmarkFig9Gaussian(b *testing.B)    { throughputFigure(b, "gaussian") }
func BenchmarkFig9SelfSimilar(b *testing.B) { throughputFigure(b, "self-similar") }
func BenchmarkFig9Zipfian(b *testing.B)     { throughputFigure(b, "zipfian") }
func BenchmarkFig9Uniform(b *testing.B)     { throughputFigure(b, "uniform") }

func BenchmarkFig10Gaussian(b *testing.B)    { scalabilityFigure(b, "gaussian") }
func BenchmarkFig10SelfSimilar(b *testing.B) { scalabilityFigure(b, "self-similar") }
func BenchmarkFig10Zipfian(b *testing.B)     { scalabilityFigure(b, "zipfian") }
func BenchmarkFig10Uniform(b *testing.B)     { scalabilityFigure(b, "uniform") }

func BenchmarkFig11YcsbLatest(b *testing.B)       { throughputFigure(b, "ycsb-latest") }
func BenchmarkFig11YcsbZipfian(b *testing.B)      { throughputFigure(b, "ycsb-zipfian") }
func BenchmarkFig11ScaleYcsbLatest(b *testing.B)  { scalabilityFigure(b, "ycsb-latest") }
func BenchmarkFig11ScaleYcsbZipfian(b *testing.B) { scalabilityFigure(b, "ycsb-zipfian") }

func BenchmarkFig12Taxi(b *testing.B)      { throughputFigure(b, "taxi") }
func BenchmarkFig12ScaleTaxi(b *testing.B) { scalabilityFigure(b, "taxi") }

// BenchmarkFig4Skew measures the workload generators' draw cost and
// reports the top-1000 coverage each run observes (the Fig. 4 stat).
func BenchmarkFig4Skew(b *testing.B) {
	for _, name := range []string{"taxi", "ycsb-latest", "ycsb-zipfian"} {
		b.Run(name, func(b *testing.B) {
			spec, err := workload.SpecByName(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			gen := spec.Build()
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.Key(r)
			}
			b.StopTimer()
			frac, _ := workload.Coverage(gen, rand.New(rand.NewSource(1)), 100_000, 1000)
			b.ReportMetric(100*frac, "top1000_cov%")
		})
	}
}

// BenchmarkFig13LoadBalance compares Stage-2 assignment with and
// without prefix-sum balancing; the imbalance metric is Fig. 13's
// max/mean leaf-operation ratio.
func BenchmarkFig13LoadBalance(b *testing.B) {
	for _, lb := range []bool{true, false} {
		label := "prefix-sum"
		if !lb {
			label = "naive"
		}
		b.Run(label, func(b *testing.B) {
			spec, err := workload.SpecByName("self-similar", benchScale)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(core.EngineConfig{
				Mode:          core.IntraInter,
				Palm:          palm.Config{Workers: 8, LoadBalance: lb},
				CacheCapacity: 1 << 14,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			gen := spec.Build()
			r := rand.New(rand.NewSource(42))
			rs := keys.NewResultSet(spec.BatchSize)
			pre := workload.Prefill(gen, r, spec.UniqueKeys)
			for lo := 0; lo < len(pre); lo += spec.BatchSize {
				hi := lo + spec.BatchSize
				if hi > len(pre) {
					hi = len(pre)
				}
				chunk := keys.Number(pre[lo:hi])
				rs.Reset(len(chunk))
				eng.ProcessBatch(chunk, rs)
			}
			batch := make([]keys.Query, spec.BatchSize)
			imbalance := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				workload.FillBatch(gen, r, batch, 0.25)
				rs.Reset(len(batch))
				b.StartTimer()
				eng.ProcessBatch(batch, rs)
				imbalance += eng.Stats().LeafOpImbalance()
			}
			b.ReportMetric(imbalance/float64(b.N), "max/mean")
		})
	}
}

// BenchmarkFig14Breakdown measures org vs intra vs inter on
// self-similar U-0.25 (Fig. 14a); the per-stage times of Fig. 14c come
// from the harness (qtransbench -experiment fig14c).
func BenchmarkFig14Breakdown(b *testing.B) {
	for _, mode := range []core.Mode{core.Original, core.Intra, core.IntraInter} {
		b.Run(mode.String(), func(b *testing.B) {
			runBatches(b, benchCase{dataset: "self-similar", mode: mode, updateRatio: 0.25})
		})
	}
}

// BenchmarkFig15BatchSize sweeps the batch size (0.5M/3M/6M scaled) on
// self-similar U-0.25.
func BenchmarkFig15BatchSize(b *testing.B) {
	for _, paperSize := range []int{500_000, 3_000_000, 6_000_000} {
		size := int(float64(paperSize) * benchScale)
		for _, mode := range []core.Mode{core.Original, core.IntraInter} {
			b.Run(fmt.Sprintf("batch%d/%s", size, mode), func(b *testing.B) {
				runBatches(b, benchCase{dataset: "self-similar", mode: mode, updateRatio: 0.25, batchSize: size})
			})
		}
	}
}

// benchStream drives b.N batches end-to-end through ProcessStream,
// serially or two-stage pipelined. A fixed pregenerated corpus is
// copied into recycled job buffers inside the loop (equal cost in both
// arms), so the measured region is the streaming engine itself and
// steady-state allocations show up in -benchmem.
func benchStream(b *testing.B, mode core.Mode, pipelined bool, batchSize int) {
	b.Helper()
	spec, err := workload.SpecByName("self-similar", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	if batchSize == 0 {
		batchSize = spec.BatchSize
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{LoadBalance: true},
		CacheCapacity: 1 << 14,
		Pipeline:      pipelined,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	gen := spec.Build()
	r := rand.New(rand.NewSource(42))
	rs := keys.NewResultSet(batchSize)
	pre := workload.Prefill(gen, r, spec.UniqueKeys)
	for lo := 0; lo < len(pre); lo += batchSize {
		hi := lo + batchSize
		if hi > len(pre) {
			hi = len(pre)
		}
		chunk := keys.Number(pre[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	const corpusLen = 16
	corpus := make([][]keys.Query, corpusLen)
	for i := range corpus {
		corpus[i] = make([]keys.Query, batchSize)
		workload.FillBatch(gen, r, corpus[i], 0.25)
	}
	const ring = 4
	free := make(chan *core.Job, ring)
	for i := 0; i < ring; i++ {
		free <- &core.Job{Qs: make([]keys.Query, batchSize)}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	in := make(chan *core.Job, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			j := <-free
			copy(j.Qs, corpus[i%corpusLen])
			in <- j
		}
		close(in)
	}()
	eng.ProcessStream(in, func(j *core.Job) { free <- j })
	busy := time.Since(start)
	b.StopTimer()
	if busy > 0 {
		b.ReportMetric(float64(batchSize*b.N)/busy.Seconds(), "qps")
	}
}

// BenchmarkPipeline compares serial vs pipelined stream execution (the
// EngineConfig.Pipeline tentpole) on self-similar U-0.25 for two batch
// sizes. Overlap speedup needs spare cores; on a single-core host both
// arms should be within noise of each other (see EXPERIMENTS.md).
func BenchmarkPipeline(b *testing.B) {
	spec, err := workload.SpecByName("self-similar", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{spec.BatchSize, 4 * spec.BatchSize} {
		for _, mode := range []core.Mode{core.Original, core.IntraInter} {
			for _, arm := range []struct {
				name      string
				pipelined bool
			}{{"serial", false}, {"pipe", true}} {
				b.Run(fmt.Sprintf("batch%d/%s/%s", size, mode, arm.name), func(b *testing.B) {
					benchStream(b, mode, arm.pipelined, size)
				})
			}
		}
	}
}

// BenchmarkShards sweeps the shard count of the range-partitioned
// engine (internal/shard) on a uniform and a skewed dataset, dividing a
// fixed worker budget across shards. Reported metrics: "qps" and the
// routing "imbalance" (max/mean queries per shard — 1.0 is perfectly
// even; skewed datasets show why Rebalance exists).
func BenchmarkShards(b *testing.B) {
	for _, ds := range []string{"uniform", "zipfian"} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards%d", ds, shards), func(b *testing.B) {
				benchSharded(b, ds, shards)
			})
		}
	}
}

func benchSharded(b *testing.B, dataset string, shards int) {
	b.Helper()
	spec, err := workload.SpecByName(dataset, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	batchSize := spec.BatchSize
	gen := spec.Build()
	perShard := 4 / shards
	if perShard < 1 {
		perShard = 1
	}
	eng, err := shard.New(shard.Config{
		Shards: shards,
		Engine: core.EngineConfig{
			Mode:          core.IntraInter,
			Palm:          palm.Config{Workers: perShard, LoadBalance: true},
			CacheCapacity: 1 << 14,
		},
		KeyMax: keys.Key(gen.KeyRange()),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	r := rand.New(rand.NewSource(42))
	rs := keys.NewResultSet(batchSize)
	pre := workload.Prefill(gen, r, spec.UniqueKeys)
	for lo := 0; lo < len(pre); lo += batchSize {
		hi := lo + batchSize
		if hi > len(pre) {
			hi = len(pre)
		}
		chunk := keys.Number(pre[lo:hi])
		rs.Reset(len(chunk))
		eng.ProcessBatch(chunk, rs)
	}

	batch := make([]keys.Query, batchSize)
	b.ResetTimer()
	var busy time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		workload.FillBatch(gen, r, batch, 0.25)
		rs.Reset(len(batch))
		b.StartTimer()
		start := time.Now()
		eng.ProcessBatch(batch, rs)
		busy += time.Since(start)
	}
	b.StopTimer()
	if busy > 0 {
		b.ReportMetric(float64(batchSize*b.N)/busy.Seconds(), "qps")
	}
	b.ReportMetric(eng.ShardStats().Imbalance(), "imbalance")
}

// BenchmarkAblationGC quantifies how much Go's garbage collector blurs
// throughput (the reproduction-band caveat in DESIGN.md §4.4): the
// same opt run with the default GC target vs GC effectively disabled.
func BenchmarkAblationGC(b *testing.B) {
	for _, gc := range []struct {
		name    string
		percent int
	}{{"gc100", 100}, {"gcOff", -1}} {
		b.Run(gc.name, func(b *testing.B) {
			old := debug.SetGCPercent(gc.percent)
			defer debug.SetGCPercent(old)
			runBatches(b, benchCase{dataset: "zipfian", mode: core.IntraInter, updateRatio: 0.25})
		})
	}
}

// BenchmarkTable2Latency reports mean batch latency per dataset for
// opt/org at U-0 and U-0.75 (ns/op IS the batch latency here).
func BenchmarkTable2Latency(b *testing.B) {
	for _, ds := range []string{"gaussian", "self-similar", "zipfian", "uniform", "ycsb-latest", "ycsb-zipfian", "taxi"} {
		for _, u := range []float64{0, 0.75} {
			for _, mode := range []core.Mode{core.IntraInter, core.Original} {
				b.Run(fmt.Sprintf("%s/U%.2f/%s", ds, u, mode), func(b *testing.B) {
					runBatches(b, benchCase{dataset: ds, mode: mode, updateRatio: u})
				})
			}
		}
	}
}
