# Tier-1 CI gate (ROADMAP.md): `make ci` must pass on every PR.
#
#   vet          go vet + a gofmt -l cleanliness check over everything
#   build        compile everything
#   test         full unit/differential suite
#   race         the concurrency-heavy packages under the race detector
#                (the pipeline, the PALM BSP stages — including the
#                kernel-ablation matrix, all 2^4 sorted-batch kernel ×
#                layout flag combos differentially vs the oracle — the
#                sharded engine, the facade stream and service hammers,
#                the WAL syncer, the batcher close/submit races, and the
#                metrics registry's sharded counters under snapshot vs
#                live Serve traffic, and the TCP server front end's
#                connection/drain machinery)
#   race-scan    the scan/RMW execution paths (epoch-fenced engine
#                batches, the pipeline's extended path, shard scan
#                split/merge, facade scans) under the race detector
#   race-tiered  the cold-range tier store (DESIGN.md §14) under the
#                race detector: the run/residency unit tests, the tier
#                engine's demotion/promotion/fault paths, and the
#                facade-level tiered integration tests (checkpoint,
#                snapshot portability, lost-tier-dir recovery)
#   fuzz-smoke   10s runs of the shard differential fuzzer (the
#                sharded/serial equivalence property of DESIGN.md §6,
#                including scan/RMW and dense-layout arms), the
#                autoshard differential fuzzer (random ops with the
#                resharding controller stepping between batches vs the
#                serial oracle, DESIGN.md §13), the
#                range/RMW differential fuzzer (every engine mode and
#                layout vs the oracle on batches mixing all five ops,
#                DESIGN.md §11), the crash-recovery fuzzer (the
#                durability property of DESIGN.md §7: power cut at an
#                arbitrary byte, then recover to an acked whole-batch
#                prefix — with gapped and dense pre-crash configs and
#                RMW in the workload), and the dual-layout tree fuzzer
#                (gapped and dense trees in lockstep vs a map oracle,
#                DESIGN.md §10), the wire-protocol frame decoder
#                (canonical re-encode property, DESIGN.md §12), and the
#                tiered differential fuzzer (tiered facade vs the plain
#                facade and a map oracle with random demotion budgets,
#                DESIGN.md §14; the crash-recovery fuzzer also carries
#                a tiered pre-crash arm)
#   bench-smoke  one-iteration compile-and-run of the pipeline benchmark
#                plus a tiny tiered-experiment run (catches bit-rot in
#                the bench harnesses without paying for a measurement)

GO ?= go

.PHONY: ci vet build test race race-kernels race-layout race-scan race-server race-autoshard race-tiered fuzz-smoke bench-smoke bench bench-kernels bench-layout bench-scan bench-serve bench-autoshard bench-tiered

ci: vet build test race race-kernels race-layout race-scan race-server race-autoshard race-tiered fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/palm ./internal/shard ./internal/wal ./internal/batcher ./internal/metrics ./internal/server ./qtrans

# The sorted-batch kernel ablation matrix (all 2^4 flag combos, small
# differential workloads vs the oracle) under the race detector. Also
# part of the plain `race` target's ./internal/palm run; kept callable
# on its own for quick kernel work.
race-kernels:
	$(GO) test -race -run 'KernelAblation' -count=1 ./internal/palm

# The gapped-layout property tests (DESIGN.md §10) under the race
# detector: random-op differential runs at several orders plus the
# dense/gapped conversion round-trips. The PALM-level gapped race
# coverage is the gapped half of the 2^4 race-kernels matrix.
race-layout:
	$(GO) test -race -run 'Gapped|Layout' -count=1 ./internal/btree

# The scan/RMW paths (DESIGN.md §11) under the race detector: the
# engine's epoch-fenced extended batches across all modes and layouts,
# the pipeline's drain-and-fence tree stage, the shard splitter/merger
# on straddling scans, and the facade-level batch API. Also part of the
# plain `race` target's package runs; kept callable on its own.
race-scan:
	$(GO) test -race -run 'ScanRMW|ScanNeverReordered|CoveringKill|ScanStats|CacheDrained|PlanEpochs' -count=1 ./internal/core
	$(GO) test -race -run 'SplitScan|Scan' -count=1 ./internal/shard
	$(GO) test -race -run 'BatchScanAndRMW' -count=1 ./qtrans

# The network front end (DESIGN.md §12) under the race detector: the
# full client/server stack — pipelining, admission-control shedding,
# and the mid-load graceful drain — plus the batcher stall regression
# suite it depends on. Also part of the plain `race` target; kept
# callable on its own for server work.
race-server:
	$(GO) test -race -count=1 ./internal/server
	$(GO) test -race -run 'Stall|SubmitFlushClose' -count=1 ./internal/batcher
	$(GO) test -race -count=1 ./cmd/qtransserver

# Cold-range tiering (DESIGN.md §14) under the race detector: the full
# tier package (run/residency formats, store demotion/promotion, the
# wrapping engine's cold-search faulting), plus the facade-level tiered
# integration tests. Also part of the plain `race` target's ./qtrans
# run; kept callable on its own for tier work.
race-tiered:
	$(GO) test -race -count=1 ./internal/tier
	$(GO) test -race -run 'Tiered' -count=1 ./qtrans

# Traffic-aware autosharding (DESIGN.md §13) under the race detector:
# the controller policy tests (split/merge/hysteresis/boundary moves),
# the migration cache hand-off, and the facade-level hammer that runs
# the background controller against concurrent batch traffic. Also part
# of the plain `race` target's package runs; kept callable on its own.
race-autoshard:
	$(GO) test -race -run 'Autoshard' -count=1 ./internal/shard ./qtrans

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzShardEquivalence -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzAutoshard -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzRangeRMWEquivalence -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzCrashRecovery -fuzztime=10s ./qtrans
	$(GO) test -run=^$$ -fuzz=FuzzTieredEquivalence -fuzztime=10s ./qtrans
	$(GO) test -run=^$$ -fuzz=FuzzTreeOps -fuzztime=10s ./internal/btree
	$(GO) test -run=^$$ -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/server

bench-smoke:
	$(GO) test -run=XXX -bench=BenchmarkPipeline -benchtime=1x .
	$(GO) test -run=XXX -bench=BenchmarkDurability -benchtime=1x ./qtrans
	$(GO) test -run=XXX -bench=BenchmarkKernels -benchtime=1x ./internal/palm
	$(GO) test -run=XXX -bench=BenchmarkLayout -benchtime=1x ./internal/palm
	$(GO) run ./cmd/qtransbench -experiment tiered -scale 0.0002 -batches 2 -workers 2

# Full benchmark sweep with allocation reporting (not part of ci).
bench:
	$(GO) test -run=XXX -bench=. -benchmem .

# Sorted-batch tree kernel measurements (DESIGN.md §8): the isolated
# descend/leafapply/endtoend microbenchmarks, then the harness ablation
# sweep written to BENCH_kernels.json (not part of ci).
bench-kernels:
	$(GO) test -run=XXX -bench=BenchmarkKernels -benchtime=200ms ./internal/palm
	$(GO) run ./cmd/qtransbench -experiment kernels -scale 0.05 -json BENCH_kernels.json

# Gapped vs dense node layout (DESIGN.md §10): the single-threaded
# search/churn microbenchmarks, then the harness ablation sweep —
# gapped vs dense across query organizations and update ratios, with
# splits-per-batch and shifted-slots-per-batch — written to
# BENCH_layout.json (not part of ci).
bench-layout:
	$(GO) test -run=XXX -bench=BenchmarkLayout -benchtime=200ms ./internal/palm
	$(GO) run ./cmd/qtransbench -experiment layout -scale 0.05 -json BENCH_layout.json

# Range scans and read-modify-write (DESIGN.md §11): batched scans vs
# the same coverage as repeated point gets, and AddDelta vs the
# two-round search-then-insert a client without server-side RMW would
# issue — written to BENCH_scan.json (not part of ci).
bench-scan:
	$(GO) run ./cmd/qtransbench -experiment scan -scale 0.05 -json BENCH_scan.json

# Traffic-aware autosharding under a drifting hotspot (DESIGN.md §13):
# the autoshard controller vs the best static equal-count layout at 4
# shards — written to BENCH_autoshard.json (not part of ci).
bench-autoshard:
	$(GO) run ./cmd/qtransbench -experiment autoshard -scale 0.05 -json BENCH_autoshard.json

# Cold-range tiering under a drifting hotspot (DESIGN.md §14): the
# tiered engine with a quarter-of-dataset resident budget vs the same
# engine all-in-memory, with residency/disk/fault counters and a
# bounded-residency assertion — written to BENCH_tiered.json (not part
# of ci).
bench-tiered:
	$(GO) run ./cmd/qtransbench -experiment tiered -scale 0.05 -json BENCH_tiered.json

# Network front end load test (DESIGN.md §12): build qtransserver,
# then drive >= 10k concurrent TCP connections against it from a
# separate process (client and server each get their own fd budget)
# through the steady / overload / graceful-drain phases — written to
# BENCH_serve.json (not part of ci).
bench-serve:
	$(GO) build -o bin/qtransserver ./cmd/qtransserver
	$(GO) run ./cmd/qtransbench -experiment serve -scale 1 -conns 12000 -serverbin bin/qtransserver -json BENCH_serve.json
