# Tier-1 CI gate (ROADMAP.md): `make ci` must pass on every PR.
#
#   vet          go vet over everything
#   build        compile everything
#   test         full unit/differential suite
#   race         the concurrency-heavy packages under the race detector
#                (the pipeline, the PALM BSP stages — including the
#                kernel-ablation matrix, all 2^3 sorted-batch kernel
#                flag combos differentially vs the oracle — the sharded
#                engine, the facade stream and service hammers, the WAL
#                syncer, the batcher close/submit races, and the metrics
#                registry's sharded counters under snapshot vs live
#                Serve traffic)
#   fuzz-smoke   10s runs of the shard differential fuzzer (the
#                sharded/serial equivalence property of DESIGN.md §6)
#                and the crash-recovery fuzzer (the durability property
#                of DESIGN.md §7: power cut at an arbitrary byte, then
#                recover to an acked whole-batch prefix)
#   bench-smoke  one-iteration compile-and-run of the pipeline benchmark
#                (catches bit-rot in the bench harness without paying
#                for a measurement)

GO ?= go

.PHONY: ci vet build test race race-kernels fuzz-smoke bench-smoke bench bench-kernels

ci: vet build test race race-kernels fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/palm ./internal/shard ./internal/wal ./internal/batcher ./internal/metrics ./qtrans

# The sorted-batch kernel ablation matrix (all 2^3 flag combos, small
# differential workloads vs the oracle) under the race detector. Also
# part of the plain `race` target's ./internal/palm run; kept callable
# on its own for quick kernel work.
race-kernels:
	$(GO) test -race -run 'KernelAblation' -count=1 ./internal/palm

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzShardEquivalence -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzCrashRecovery -fuzztime=10s ./qtrans

bench-smoke:
	$(GO) test -run=XXX -bench=BenchmarkPipeline -benchtime=1x .
	$(GO) test -run=XXX -bench=BenchmarkDurability -benchtime=1x ./qtrans
	$(GO) test -run=XXX -bench=BenchmarkKernels -benchtime=1x ./internal/palm

# Full benchmark sweep with allocation reporting (not part of ci).
bench:
	$(GO) test -run=XXX -bench=. -benchmem .

# Sorted-batch tree kernel measurements (DESIGN.md §8): the isolated
# descend/leafapply/endtoend microbenchmarks, then the harness ablation
# sweep written to BENCH_kernels.json (not part of ci).
bench-kernels:
	$(GO) test -run=XXX -bench=BenchmarkKernels -benchtime=200ms ./internal/palm
	$(GO) run ./cmd/qtransbench -experiment kernels -scale 0.05 -json BENCH_kernels.json
