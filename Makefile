# Tier-1 CI gate (ROADMAP.md): `make ci` must pass on every PR.
#
#   vet          go vet over everything
#   build        compile everything
#   test         full unit/differential suite
#   race         the concurrency-heavy packages under the race detector
#                (the pipeline, the PALM BSP stages, the sharded engine,
#                the facade stream and service hammers)
#   fuzz-smoke   a 10s run of the shard differential fuzzer (the
#                sharded/serial equivalence property of DESIGN.md §6)
#   bench-smoke  one-iteration compile-and-run of the pipeline benchmark
#                (catches bit-rot in the bench harness without paying
#                for a measurement)

GO ?= go

.PHONY: ci vet build test race fuzz-smoke bench-smoke bench

ci: vet build test race fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/palm ./internal/shard ./qtrans

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzShardEquivalence -fuzztime=10s ./internal/shard

bench-smoke:
	$(GO) test -run=XXX -bench=BenchmarkPipeline -benchtime=1x .

# Full benchmark sweep with allocation reporting (not part of ci).
bench:
	$(GO) test -run=XXX -bench=. -benchmem .
