package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -experiment accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero scale", []string{"-experiment", "table1", "-scale", "0"}},
		{"negative scale", []string{"-experiment", "table1", "-scale", "-1"}},
		{"scale above one", []string{"-experiment", "table1", "-scale", "2"}},
		{"zero workers", []string{"-experiment", "table1", "-workers", "0"}},
		{"negative workers", []string{"-experiment", "table1", "-workers", "-1"}},
		{"order below minimum", []string{"-experiment", "table1", "-order", "2"}},
		{"negative order", []string{"-experiment", "table1", "-order", "-8"}},
		{"negative cache", []string{"-experiment", "table1", "-cache", "-1"}},
		{"negative batches", []string{"-experiment", "table1", "-batches", "-3"}},
		{"non-bool pathreuse", []string{"-experiment", "table1", "-pathreuse=maybe"}},
		{"non-bool branchless", []string{"-experiment", "table1", "-branchless=2"}},
		{"non-bool mergeapply", []string{"-experiment", "table1", "-mergeapply=yep"}},
		{"json to unwritable path", []string{"-experiment", "table1", "-scale", "0.0001", "-json", "/no/such/dir/out.json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestRunTinyExperiment(t *testing.T) {
	// table1 is computation-free; fig4 exercises the generators.
	if err := run([]string{"-experiment", "table1", "-scale", "0.0001"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyExperimentJSON(t *testing.T) {
	path := t.TempDir() + "/out.json"
	if err := run([]string{"-experiment", "table1", "-scale", "0.0001", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []jsonExperiment
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Experiment != "table1" {
		t.Fatalf("json = %+v", out)
	}
	if len(out[0].Header) == 0 || len(out[0].Rows) == 0 {
		t.Fatalf("empty header/rows: %+v", out[0])
	}
}

func TestRunKernelFlagsAccepted(t *testing.T) {
	// Kernel toggles must parse and reach the harness without error;
	// table1 keeps the run computation-free.
	err := run([]string{"-experiment", "table1", "-scale", "0.0001",
		"-pathreuse=false", "-branchless=false", "-mergeapply=false"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyExperimentWithPlot(t *testing.T) {
	if err := run([]string{"-experiment", "table1", "-scale", "0.0001", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestChartFromRows(t *testing.T) {
	raw := "u\torg_qps\topt_qps\tspeedup\n0\t1000\t2000\t2\n0.25\t1500\t1800\t1.2\n"
	c := chartFromRows("t", raw)
	if c == nil {
		t.Fatal("nil chart")
	}
	// speedup column filtered out because _qps columns exist.
	if len(c.Series) != 2 || c.Series[0].Name != "org_qps" || c.Series[1].Name != "opt_qps" {
		t.Fatalf("series = %+v", c.Series)
	}
	if len(c.XLabels) != 2 || c.XLabels[0] != "u=0" {
		t.Fatalf("xlabels = %v", c.XLabels)
	}
	if c.Series[1].Values[0] != 2000 {
		t.Fatalf("values = %v", c.Series[1].Values)
	}
}

func TestChartFromRowsNonNumeric(t *testing.T) {
	if c := chartFromRows("t", "a\tb\nx\ty\n"); c != nil {
		t.Fatalf("non-numeric rows produced a chart: %+v", c)
	}
	if c := chartFromRows("t", "only-header\n"); c != nil {
		t.Fatal("header-only rows produced a chart")
	}
	// Ragged rows (fig13's imbalance summary) must be rejected, not
	// mis-parsed.
	if c := chartFromRows("t", "a\tb\n1\t2\nsummary-row\n"); c != nil {
		t.Fatal("ragged rows produced a chart")
	}
}
