// Command qtransbench regenerates the paper's figures and tables as
// text rows (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	qtransbench -experiment fig9a [-scale 0.002] [-workers N] [-seed S]
//	qtransbench -experiment all
//	qtransbench -list
//
// At -scale 1 the Table I dataset sizes match the paper (100M queries
// for the synthetic datasets); the default scale keeps every experiment
// at laptop scale. Output columns are tab-separated with a header row.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/btree"
	"repro/internal/harness"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qtransbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qtransbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment id (fig4, fig9a..d, fig10a..d, fig11a..d, fig12a..b, fig13, fig14a..c, fig15, abl1, abl2, pipe, shard, autoshard, tiered, kernels, layout, scan, metrics, serve, table1, table2) or 'all'")
		list       = fs.Bool("list", false, "list available experiments and exit")
		scale      = fs.Float64("scale", 0.002, "dataset scale factor in (0,1]; 1 = paper scale (Table I sizes)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "BSP worker threads")
		order      = fs.Int("order", 0, "B+ tree order (0 = default)")
		seed       = fs.Int64("seed", 42, "workload random seed")
		cacheCap   = fs.Int("cache", 1<<16, "top-K cache capacity for inter-batch runs")
		batches    = fs.Int("batches", 0, "cap on batches per measurement (0 = whole dataset)")
		plot       = fs.Bool("plot", false, "render each experiment's rows as an ASCII chart too")
		jsonPath   = fs.String("json", "", "also write the experiment rows to FILE as JSON")

		conns     = fs.Int("conns", 0, "concurrent client connections for the serve experiment (0 = scale-derived)")
		serverBin = fs.String("serverbin", "", "path to a built qtransserver binary for the serve experiment (empty = in-process server)")

		pathReuse  = fs.Bool("pathreuse", true, "path-reuse descent kernel (false = fresh root descent per query)")
		branchless = fs.Bool("branchless", true, "branchless intra-node search kernel (false = closure-based binary search)")
		mergeApply = fs.Bool("mergeapply", true, "merge-based leaf application kernel (false = per-query leaf updates)")
		gapped     = fs.Bool("gapped", true, "gapped (BS-tree) node layout (false = classic dense nodes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale %v out of range (0,1]", *scale)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", *workers)
	}
	if *order != 0 && *order < btree.MinOrder {
		return fmt.Errorf("-order %d below minimum %d (0 selects the default)", *order, btree.MinOrder)
	}
	if *cacheCap < 0 {
		return fmt.Errorf("-cache %d must be >= 0", *cacheCap)
	}
	if *batches < 0 {
		return fmt.Errorf("-batches %d must be >= 0 (0 = whole dataset)", *batches)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *experiment == "" {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or -list)")
	}

	rn := harness.NewRunner(harness.Options{
		Scale:              *scale,
		Workers:            *workers,
		Order:              *order,
		Seed:               *seed,
		CacheCapacity:      *cacheCap,
		Batches:            *batches,
		NoPathReuse:        !*pathReuse,
		NoBranchlessSearch: !*branchless,
		NoMergeApply:       !*mergeApply,
		NoGappedLayout:     !*gapped,
		Conns:              *conns,
		ServerBin:          *serverBin,
	})

	exps := harness.Experiments()
	if *experiment != "all" {
		e, err := harness.ExperimentByID(*experiment)
		if err != nil {
			return err
		}
		exps = []harness.Experiment{e}
	}
	var jsonOut []jsonExperiment
	for _, e := range exps {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		var buf bytes.Buffer
		if err := e.Run(rn, &buf); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		os.Stdout.WriteString(buf.String())
		if *jsonPath != "" {
			jsonOut = append(jsonOut, jsonFromRows(e, buf.String()))
		}
		if *plot {
			if chart := chartFromRows(e.Title, buf.String()); chart != nil {
				fmt.Println()
				if err := chart.Render(os.Stdout); err != nil {
					return err
				}
			}
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// jsonExperiment is one experiment's rows in the -json output: the
// tab-separated text table split into a header and string cells, so
// downstream tooling need not re-parse column alignment.
type jsonExperiment struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
}

// jsonFromRows splits an experiment's text output into the JSON shape.
func jsonFromRows(e harness.Experiment, raw string) jsonExperiment {
	out := jsonExperiment{Experiment: e.ID, Title: e.Title}
	lines := strings.Split(strings.TrimRight(raw, "\n"), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if i == 0 {
			out.Header = cols
		} else {
			out.Rows = append(out.Rows, cols)
		}
	}
	return out
}

// chartFromRows converts an experiment's tab-separated rows (header +
// data; first column = x label, numeric columns = series) into a bar
// chart. Returns nil when the rows don't fit that shape (e.g. table1).
func chartFromRows(title, raw string) *textplot.Chart {
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) < 2 {
		return nil
	}
	header := strings.Split(lines[0], "\t")
	if len(header) < 2 {
		return nil
	}
	chart := &textplot.Chart{Title: title}
	// Identify numeric columns from the first data row.
	first := strings.Split(lines[1], "\t")
	if len(first) != len(header) {
		return nil
	}
	numeric := make([]bool, len(header))
	count := 0
	for i := 1; i < len(first); i++ {
		if _, err := strconv.ParseFloat(first[i], 64); err == nil {
			numeric[i] = true
			count++
		}
	}
	if count == 0 {
		return nil
	}
	// When throughput columns are present, chart only those: mixing
	// q/s with ratios on one scale makes the ratio bars unreadable.
	hasQPS := false
	for i, h := range header {
		if numeric[i] && strings.HasSuffix(h, "_qps") {
			hasQPS = true
		}
	}
	if hasQPS {
		count = 0
		for i, h := range header {
			if numeric[i] && !strings.HasSuffix(h, "_qps") {
				numeric[i] = false
			} else if numeric[i] {
				count++
			}
		}
	}
	for i, h := range header {
		if numeric[i] {
			chart.Series = append(chart.Series, textplot.Series{Name: h})
		}
	}
	for _, line := range lines[1:] {
		cols := strings.Split(line, "\t")
		if len(cols) != len(header) {
			return nil
		}
		chart.XLabels = append(chart.XLabels, header[0]+"="+cols[0])
		si := 0
		for i := 1; i < len(cols); i++ {
			if !numeric[i] {
				continue
			}
			v, err := strconv.ParseFloat(cols[i], 64)
			if err != nil {
				return nil
			}
			chart.Series[si].Values = append(chart.Series[si].Values, v)
			si++
		}
	}
	return chart
}
