package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenPath is the committed schema snapshot. It lives with the other
// facade-level fixtures so qtrans-level tooling can consume it too.
const goldenPath = "../../qtrans/testdata/qtransbench_schema.json"

// experimentSchema is the stable part of one experiment's -json output:
// id, title, and header columns. Row values are measurements and vary
// run to run; the schema must not.
type experimentSchema struct {
	Experiment string   `json:"experiment"`
	Title      string   `json:"title"`
	Header     []string `json:"header"`
}

// TestJSONSchemaGolden runs the full experiment roster at a tiny scale
// through the real -json path and compares the output schema —
// experiment ids, titles, and header columns — against the committed
// golden. A schema drift fails with a line diff; refresh the golden
// with UPDATE_GOLDEN=1 go test ./cmd/qtransbench.
func TestJSONSchemaGolden(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "out.json")

	// run() streams row text to stdout; silence it for the test.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	saved := os.Stdout
	os.Stdout = devnull
	err = run([]string{
		"-experiment", "all",
		"-scale", "0.0002", "-batches", "2", "-workers", "2",
		"-json", jsonOut,
	})
	os.Stdout = saved
	if err != nil {
		t.Fatalf("qtransbench run: %v", err)
	}

	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var exps []jsonExperiment
	if err := json.Unmarshal(data, &exps); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(exps) == 0 {
		t.Fatal("-json output holds no experiments")
	}

	// Structural invariants that hold regardless of measured values.
	var schema []experimentSchema
	for _, e := range exps {
		if len(e.Header) == 0 {
			t.Errorf("%s: empty header", e.Experiment)
		}
		if len(e.Rows) == 0 {
			t.Errorf("%s: no data rows", e.Experiment)
		}
		for i, r := range e.Rows {
			if len(r) != len(e.Header) {
				t.Errorf("%s row %d: %d cells for %d header columns", e.Experiment, i, len(r), len(e.Header))
			}
		}
		schema = append(schema, experimentSchema{Experiment: e.Experiment, Title: e.Title, Header: e.Header})
	}

	got, err := json.MarshalIndent(schema, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if diff := lineDiff(string(want), string(got)); diff != "" {
		t.Fatalf("-json schema drifted from %s\n(refresh with UPDATE_GOLDEN=1 go test ./cmd/qtransbench)\n%s", goldenPath, diff)
	}
}

// lineDiff renders a minimal readable diff ("" when equal): every line
// present on only one side, prefixed -want / +got, with line numbers.
func lineDiff(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	shown := 0
	for i := 0; i < n && shown < 20; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  -want %s\n  +got  %s\n", i+1, w, g)
			shown++
		}
	}
	if shown == 20 {
		sb.WriteString("  ... (diff truncated)\n")
	}
	return sb.String()
}
