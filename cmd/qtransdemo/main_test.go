package main

import "testing"

// TestRunDemo executes the full demo pipeline; its assertions live in
// the core package's TestPaperRunningExample* tests — here we only
// require that the end-to-end walk succeeds.
func TestRunDemo(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceIsThePaperExample(t *testing.T) {
	qs := sequence()
	if len(qs) != 9 {
		t.Fatalf("running example has %d queries, want 9", len(qs))
	}
	// Query 7 is D(key3).
	if qs[6].String() != "D(3)@6" {
		t.Fatalf("q7 = %v", qs[6])
	}
}
