// Command qtransdemo walks the paper's running example (Figs. 5 and 7)
// through the whole QSAT pipeline, printing each stage:
//
//  1. the original 9-query sequence,
//  2. the forward define-use analysis with reaching-definition sets,
//  3. the QUD chains,
//  4. Round 1 (useless query elimination / mark-sweep),
//  5. Round 2 (query inference & reordering),
//  6. the production one-pass QSAT output, and
//  7. the end-to-end Engine evaluation of the sequence.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qtransdemo:", err)
		os.Exit(1)
	}
}

func sequence() []keys.Query {
	return keys.Number([]keys.Query{
		keys.Insert(1, 1), // 1: I(key1, v1)
		keys.Search(1),    // 2: S(key1)
		keys.Insert(2, 2), // 3: I(key2, v2)
		keys.Search(1),    // 4: S(key1)
		keys.Insert(3, 3), // 5: I(key3, v3)
		keys.Insert(2, 4), // 6: I(key2, v4)
		keys.Delete(3),    // 7: D(key3)
		keys.Search(3),    // 8: S(key3)
		keys.Search(2),    // 9: S(key2)
	})
}

func run() error {
	qs := sequence()

	fmt.Println("== Original query sequence (Fig. 5) ==")
	for i, q := range qs {
		fmt.Printf("%2d  %s\n", i+1, q)
	}

	fmt.Println("\n== Forward define-use analysis (Fig. 7-a) ==")
	a := core.Analyze(qs)
	fmt.Print(core.FormatAnalysis(a))

	fmt.Println("\n== QUD chains (Fig. 7-b) ==")
	for i, d := range a.QUD {
		if qs[i].Op == keys.OpSearch && d >= 0 {
			fmt.Printf("q%d (%s)  ->  q%d (%s)\n", i+1, qs[i], d+1, qs[d])
		}
	}

	fmt.Println("\n== Round 1: useless query elimination (Fig. 7-c) ==")
	kept := a.MarkSweep()
	for _, i := range kept {
		fmt.Printf("%2d  %s\n", i+1, qs[i])
	}
	fmt.Printf("(%d of %d queries remain)\n", len(kept), len(qs))

	fmt.Println("\n== Round 2: query inference & reordering (Fig. 7-d) ==")
	ops := core.TwoRoundQSAT(qs)
	remaining := 0
	for _, op := range ops {
		fmt.Printf("    %s\n", op)
		if !op.Return {
			remaining++
		}
	}
	fmt.Printf("(%d queries need evaluation)\n", remaining)

	fmt.Println("\n== One-pass QSAT (Algorithm 2) ==")
	sorted := append([]keys.Query(nil), qs...)
	keys.SortByKey(sorted)
	var router core.Router
	router.Reset(len(qs))
	rs := keys.NewResultSet(len(qs))
	em := core.NewEmitter(&router, rs)
	em.CollectReps = true
	core.QSATSequence(sorted, em)
	for _, q := range em.Out {
		fmt.Printf("    evaluate %s\n", q)
	}
	fmt.Printf("(%d inferred returns, %d queries remain)\n", em.Inferred, len(em.Out))

	fmt.Println("\n== End-to-end Engine evaluation ==")
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          core.IntraInter,
		Palm:          palm.Config{Order: 8, Workers: 2, LoadBalance: true},
		CacheCapacity: 4,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	batch := sequence()
	res := keys.NewResultSet(len(batch))
	eng.ProcessBatch(batch, res)
	for i := int32(0); i < int32(res.Len()); i++ {
		if r, ok := res.Get(i); ok {
			if r.Found {
				fmt.Printf("q%d  ->  ret %d\n", i+1, r.Value)
			} else {
				fmt.Printf("q%d  ->  ret null\n", i+1)
			}
		}
	}
	fmt.Printf("stats: %s\n", eng.Stats())
	return nil
}
