// Command qtranstrace generates, inspects, imports, and replays query
// traces in the repository's binary format, decoupling workload
// generation from measurement (the paper's artifact ships its realistic
// datasets as files the same way).
//
// Subcommands:
//
//	qtranstrace gen -dataset taxi -queries 100000 -u 0.25 -out taxi.qtr
//	qtranstrace info -in taxi.qtr
//	qtranstrace import -csv trips.csv -loncol 5 -latcol 6 -out taxi.qtr
//	qtranstrace replay -in taxi.qtr -mode inter -batch 20000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qtranstrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: qtranstrace <gen|info|import|replay> [flags]")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:])
	case "info":
		return infoCmd(args[1:])
	case "import":
		return importCmd(args[1:])
	case "replay":
		return replayCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "taxi", "Table I dataset name")
		scale   = fs.Float64("scale", 0.01, "dataset scale for the key space")
		queries = fs.Int("queries", 100_000, "queries to generate")
		u       = fs.Float64("u", 0.25, "update ratio")
		seed    = fs.Int64("seed", 42, "random seed")
		out     = fs.String("out", "", "output file (required)")
		rush    = fs.Bool("rush", false, "wrap the generator with rush-hour temporal skew")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	spec, err := workload.SpecByName(*dataset, *scale)
	if err != nil {
		return err
	}
	var gen workload.Generator = spec.Build()
	if *rush {
		gen = workload.NewTimeVarying(gen)
	}
	r := rand.New(rand.NewSource(*seed))
	qs := workload.Batch(gen, r, *queries, *u)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, qs); err != nil {
		return err
	}
	fmt.Printf("wrote %d queries (%s, U-%.2f) to %s\n", len(qs), gen.Name(), *u, *out)
	return f.Close()
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -in is required")
	}
	qs, err := readTrace(*in)
	if err != nil {
		return err
	}
	s, i, d := keys.CountOps(qs)
	distinct := map[keys.Key]struct{}{}
	for _, q := range qs {
		distinct[q.Key] = struct{}{}
	}
	fmt.Printf("queries: %d\nsearches: %d\ninserts: %d\ndeletes: %d\ndistinct keys: %d\nredundancy: %.1f%%\n",
		len(qs), s, i, d, len(distinct), 100*(1-float64(len(distinct))/float64(max(1, len(qs)))))
	return nil
}

func importCmd(args []string) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	var (
		csvPath = fs.String("csv", "", "CSV file with longitude/latitude columns (required)")
		lonCol  = fs.Int("loncol", 5, "zero-based longitude column")
		latCol  = fs.Int("latcol", 6, "zero-based latitude column")
		out     = fs.String("out", "", "output trace file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" || *out == "" {
		return fmt.Errorf("import: -csv and -out are required")
	}
	in, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer in.Close()
	qs, skipped, err := trace.ImportCSV(in, trace.NYCGrid(), *lonCol, *latCol)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, qs); err != nil {
		return err
	}
	fmt.Printf("imported %d points (%d rows skipped) to %s\n", len(qs), skipped, *out)
	return f.Close()
}

func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "trace file (required)")
		modeStr = fs.String("mode", "inter", "engine mode: org, intra, inter, sim")
		batch   = fs.Int("batch", 20_000, "batch size")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "BSP workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("replay: -in is required")
	}
	mode, ok := map[string]core.Mode{
		"org": core.Original, "intra": core.Intra,
		"inter": core.IntraInter, "sim": core.SimIntra,
	}[*modeStr]
	if !ok {
		return fmt.Errorf("replay: unknown mode %q", *modeStr)
	}
	qs, err := readTrace(*in)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Mode:          mode,
		Palm:          palm.Config{Workers: *workers, LoadBalance: true},
		CacheCapacity: 1 << 16,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	rs := keys.NewResultSet(*batch)
	var elapsed time.Duration
	remaining := 0
	for lo := 0; lo < len(qs); lo += *batch {
		hi := lo + *batch
		if hi > len(qs) {
			hi = len(qs)
		}
		chunk := keys.Number(qs[lo:hi])
		rs.Reset(len(chunk))
		start := time.Now()
		eng.ProcessBatch(chunk, rs)
		elapsed += time.Since(start)
		remaining += eng.Stats().RemainingQueries
	}
	fmt.Printf("replayed %d queries in %v: %.0f q/s (mode %s, %.1f%% eliminated)\n",
		len(qs), elapsed.Round(time.Millisecond), stats.Throughput(len(qs), elapsed),
		mode, 100*(1-float64(remaining)/float64(max(1, len(qs)))))
	return nil
}

func readTrace(path string) ([]keys.Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
