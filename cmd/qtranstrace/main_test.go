package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenInfoReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.qtr")

	if err := run([]string{"gen", "-dataset", "zipfian", "-scale", "0.0005",
		"-queries", "5000", "-u", "0.5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	if err := run([]string{"info", "-in", out}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"org", "intra", "inter", "sim"} {
		if err := run([]string{"replay", "-in", out, "-mode", mode, "-batch", "1000", "-workers", "2"}); err != nil {
			t.Fatalf("replay %s: %v", mode, err)
		}
	}
}

func TestGenWithRushFlag(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rush.qtr")
	if err := run([]string{"gen", "-dataset", "uniform", "-scale", "0.0005",
		"-queries", "2000", "-rush", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestImportCSVCommand(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "trips.csv")
	content := "a,b,c,d,e,lon,lat\n" +
		"x,x,x,x,x,-73.95,40.72\n" +
		"x,x,x,x,x,-73.96,40.73\n" +
		"x,x,x,x,x,999,999\n"
	if err := os.WriteFile(csv, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "trips.qtr")
	if err := run([]string{"import", "-csv", csv, "-loncol", "5", "-latcol", "6", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", "-in", out}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"warp"},
		{"gen"},    // missing -out
		{"info"},   // missing -in
		{"import"}, // missing -csv/-out
		{"replay"}, // missing -in
		{"replay", "-in", "/nonexistent", "-mode", "org"},
		{"replay", "-in", "/nonexistent", "-mode", "warp"},
		{"gen", "-dataset", "nope", "-out", "/tmp/x.qtr"},
		{"info", "-in", "/nonexistent"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
