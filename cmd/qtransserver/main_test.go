package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/server"
	"repro/internal/server/client"
)

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-workers", "-3"},
		{"-maxbatch", "-1"},
		{"-maxdelay", "-5ms"},
		{"-target-latency", "-1us"},
		{"-highwater", "-2"},
		{"-maxscan", "-1"},
		{"-drain-grace", "0s"},
		{"-drain-grace", "-1s"},
		{"-addr"},           // missing value
		{"-no-such-flag"},   // unknown flag
		{"-workers", "one"}, // unparsable int
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

// TestServeAndDrainLifecycle runs the whole binary path in-process:
// ephemeral listen, the advertised "listening on" line, live traffic
// through a real client, then a self-delivered SIGTERM and the final
// drained counters line with accepted == responses.
func TestServeAndDrainLifecycle(t *testing.T) {
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-maxdelay", "1ms"}, pw)
		pw.Close()
	}()
	lines := bufio.NewScanner(pr)
	readLine := func(prefix string) string {
		t.Helper()
		for lines.Scan() {
			if strings.HasPrefix(lines.Text(), prefix) {
				return lines.Text()
			}
		}
		t.Fatalf("stdout ended before a %q line (run: %v)", prefix, <-runErr)
		return ""
	}
	addr := strings.TrimPrefix(readLine("listening on "), "listening on ")

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Do(keys.Insert(keys.Key(i), keys.Value(i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Call(keys.Scan(0, 50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != server.StatusOK || len(resp.Rows) != 50 {
		t.Fatalf("scan over the wire: %+v", resp)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained := readLine("drained ")
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	var accepted, responses, shed, drainRefused int64
	if _, err := fmt.Sscanf(drained, "drained accepted=%d responses=%d shed=%d drainrefused=%d",
		&accepted, &responses, &shed, &drainRefused); err != nil {
		t.Fatalf("counters line %q: %v", drained, err)
	}
	if accepted != 51 || responses != accepted {
		t.Fatalf("counters line %q: want accepted=51 == responses", drained)
	}
}
