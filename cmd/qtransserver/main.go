// Command qtransserver serves the engine over TCP: the length-framed
// binary protocol of internal/server in front of a qtrans.Service
// batcher (§VI-D's online-processing regime as a network system).
//
// Usage:
//
//	qtransserver [-addr :7070] [-workers N] [-pipeline] [-maxbatch N]
//	             [-maxdelay D] [-target-latency D] [-highwater N]
//	             [-maxscan N] [-shards N] [-autoshard]
//	             [-tiered DIR] [-tiered-budget N]
//	             [-metrics-addr HOST:PORT]
//
// On start it prints one line, "listening on HOST:PORT", to stdout.
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, refuse new
// requests with a draining status, answer every accepted request, then
// exit after printing a final counters line:
//
//	drained accepted=N responses=N shed=N drainrefused=N
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/qtrans"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qtransserver:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("qtransserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7070", "TCP listen address (host:port; port 0 = ephemeral)")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "BSP worker threads")
		pipeline   = fs.Bool("pipeline", false, "two-stage pipelined batch execution")
		maxBatch   = fs.Int("maxbatch", 0, "batcher flush size (0 = default 4096)")
		maxDelay   = fs.Duration("maxdelay", 0, "batcher flush deadline (0 = default 10ms)")
		targetLat  = fs.Duration("target-latency", 0, "auto-tune batch size toward this processing latency (0 = off)")
		highWater  = fs.Int("highwater", 0, "shed requests while the dispatch backlog exceeds this many batches (0 = default 256)")
		maxScan    = fs.Int("maxscan", 0, "clamp scan row limits to this many rows (0 = default 65536)")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "graceful-drain deadline before connections are force-closed")
		metricsOn  = fs.String("metrics-addr", "", "also serve /metrics and /healthz over HTTP on this address (empty = off)")
		shards     = fs.Int("shards", 1, "range-partition the key space across N engines (1 = single engine)")
		autoshard  = fs.Bool("autoshard", false, "traffic-aware automatic resharding: heat-weighted boundary moves, hot splits, cold merges (needs -shards > 1)")
		tieredDir  = fs.String("tiered", "", "cold-range tiering: spill cold key ranges to runs in this directory, bounding resident keys (empty = off; wiped on start)")
		tieredBud  = fs.Int("tiered-budget", 1<<20, "tiered resident key budget (needs -tiered)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d: need at least 1", *workers)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", *shards)
	}
	if *autoshard && *shards <= 1 {
		return fmt.Errorf("-autoshard needs -shards > 1")
	}
	if *maxBatch < 0 || *maxDelay < 0 || *targetLat < 0 || *highWater < 0 || *maxScan < 0 {
		return fmt.Errorf("-maxbatch/-maxdelay/-target-latency/-highwater/-maxscan must be non-negative")
	}
	if *drainGrace <= 0 {
		return fmt.Errorf("-drain-grace %v: must be positive", *drainGrace)
	}
	if *tieredDir == "" && *tieredBud != 1<<20 {
		return fmt.Errorf("-tiered-budget needs -tiered")
	}
	if *tieredDir != "" && *tieredBud < 1 {
		return fmt.Errorf("-tiered-budget %d: need at least 1", *tieredBud)
	}

	met := qtrans.NewMetrics()
	db, err := qtrans.Open(qtrans.Options{
		Workers:   *workers,
		Pipeline:  *pipeline,
		Shards:    *shards,
		Autoshard: qtrans.Autoshard{Enabled: *autoshard},
		Tiered:    qtrans.Tiered{Dir: *tieredDir, MaxResidentKeys: *tieredBud},
		Metrics:   met,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	svc := db.Serve(qtrans.ServiceOptions{
		MaxBatch:      *maxBatch,
		MaxDelay:      *maxDelay,
		TargetLatency: *targetLat,
	})
	defer svc.Close()

	srv, err := server.New(server.Config{
		Batcher:     svc.Batcher(),
		HighWater:   *highWater,
		MaxScanRows: *maxScan,
		Metrics:     met,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *metricsOn != "" {
		bound, stop, err := db.ServeMetrics(*metricsOn)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "metrics on %s\n", bound)
	}
	// The harness parses this line to discover an ephemeral port.
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "signal %v: draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	st := srv.Stats()
	// The harness parses this line for the accepted==responses check.
	fmt.Fprintf(stdout, "drained accepted=%d responses=%d shed=%d drainrefused=%d\n",
		st.Accepted, st.Responses, st.Shed, st.Drained)
	return nil
}
