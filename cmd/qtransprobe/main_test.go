package main

import "testing"

func TestRunTinyProbe(t *testing.T) {
	err := run([]string{"-dataset", "uniform", "-scale", "0.0002", "-batches", "1", "-workers", "1", "-modes", "org,sim"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope", "-scale", "0.0002"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-dataset", "uniform", "-scale", "0.0002", "-modes", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero scale", []string{"-scale", "0"}},
		{"negative scale", []string{"-scale", "-0.5"}},
		{"scale above one", []string{"-scale", "1.5"}},
		{"negative u", []string{"-u", "-0.1"}},
		{"u above one", []string{"-u", "1.1"}},
		{"zero workers", []string{"-workers", "0"}},
		{"negative workers", []string{"-workers", "-2"}},
		{"zero batches", []string{"-batches", "0"}},
		{"negative batches", []string{"-batches", "-1"}},
		{"zero shards", []string{"-shards", "0"}},
		{"negative shards", []string{"-shards", "-4"}},
		{"negative rebalance", []string{"-rebalance", "-1"}},
		{"rebalance without shards", []string{"-rebalance", "5"}},
		{"rebalance with one shard", []string{"-rebalance", "5", "-shards", "1"}},
		{"non-bool pathreuse", []string{"-pathreuse=maybe"}},
		{"non-bool branchless", []string{"-branchless=2"}},
		{"non-bool mergeapply", []string{"-mergeapply=yep"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}
