package main

import "testing"

func TestRunTinyProbe(t *testing.T) {
	err := run([]string{"-dataset", "uniform", "-scale", "0.0002", "-batches", "1", "-workers", "1", "-modes", "org,sim"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "nope", "-scale", "0.0002"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-dataset", "uniform", "-scale", "0.0002", "-modes", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
