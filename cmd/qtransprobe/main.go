// Command qtransprobe measures a single (dataset, update-ratio)
// configuration across engine modes and prints the per-stage time
// breakdown — the quick diagnosis tool behind EXPERIMENTS.md's cost
// analysis.
//
// Usage:
//
//	qtransprobe -dataset zipfian -scale 0.15 -u 0.25 -batches 3
//	qtransprobe -tiered -tiered-budget 100000   # cold-range tiering on
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qtransprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qtransprobe", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "zipfian", "Table I dataset name")
		scale   = fs.Float64("scale", 0.05, "dataset scale in (0,1]")
		u       = fs.Float64("u", 0.25, "update ratio")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "BSP workers")
		batches = fs.Int("batches", 3, "batches per mode")
		seed    = fs.Int64("seed", 42, "workload seed")
		modes   = fs.String("modes", "org,intra,inter,sim", "comma-separated modes")
		shards  = fs.Int("shards", 1, "range-partitioned shard count (>1 splits the worker budget across shards)")
		rebal   = fs.Int("rebalance", 0, "rebalance shard boundaries every N batches (0 = never; needs -shards > 1)")
		auto    = fs.Bool("autoshard", false, "traffic-aware automatic resharding: one controller step per batch (needs -shards > 1)")
		tiered  = fs.Bool("tiered", false, "cold-range tiering: spill cold key ranges to runs in a temp directory, bounding resident keys (needs -shards = 1)")
		tierBud = fs.Int("tiered-budget", 0, "tiered resident key budget (0 = a quarter of the keys stored after prefill)")

		pathReuse  = fs.Bool("pathreuse", true, "path-reuse descent kernel (false = fresh root descent per query)")
		branchless = fs.Bool("branchless", true, "branchless intra-node search kernel (false = closure-based binary search)")
		mergeApply = fs.Bool("mergeapply", true, "merge-based leaf application kernel (false = per-query leaf updates)")
		gapped     = fs.Bool("gapped", true, "gapped (BS-tree) node layout (false = classic dense nodes)")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address during the run (e.g. :9100); also prints the final metrics table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale %v out of range (0,1]", *scale)
	}
	if *u < 0 || *u > 1 {
		return fmt.Errorf("-u %v out of range [0,1]", *u)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", *workers)
	}
	if *batches < 1 {
		return fmt.Errorf("-batches %d must be >= 1", *batches)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d must be >= 1", *shards)
	}
	if *rebal < 0 {
		return fmt.Errorf("-rebalance %d must be >= 0", *rebal)
	}
	if *rebal > 0 && *shards <= 1 {
		return fmt.Errorf("-rebalance %d needs -shards > 1", *rebal)
	}
	if *auto && *shards <= 1 {
		return fmt.Errorf("-autoshard needs -shards > 1")
	}
	if *tiered && *shards > 1 {
		return fmt.Errorf("-tiered needs -shards = 1")
	}
	if *tierBud < 0 {
		return fmt.Errorf("-tiered-budget %d must be >= 0", *tierBud)
	}
	tierDir := ""
	if *tiered {
		dir, err := os.MkdirTemp("", "qtransprobe-tier-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		tierDir = dir
	}

	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.New()
		bound, stop, err := metrics.Serve(*metricsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("metrics: serving http://%s/metrics\n", bound)
	}

	rn := harness.NewRunner(harness.Options{
		Scale: *scale, Workers: *workers, Seed: *seed,
		CacheCapacity: 1 << 16, Batches: *batches,
		NoPathReuse:        !*pathReuse,
		NoBranchlessSearch: !*branchless,
		NoMergeApply:       !*mergeApply,
		NoGappedLayout:     !*gapped,
		Metrics:            reg,
		Autoshard:          shard.AutoshardConfig{Enabled: *auto},
		TieredDir:          tierDir,
		TieredBudget:       *tierBud,
	})
	spec, err := workload.SpecByName(*dataset, *scale)
	if err != nil {
		return err
	}

	byName := map[string]core.Mode{
		"org": core.Original, "intra": core.Intra,
		"inter": core.IntraInter, "sim": core.SimIntra,
	}
	for _, name := range strings.Split(*modes, ",") {
		mode, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown mode %q (want org, intra, inter, sim)", name)
		}
		var res *harness.Result
		if *shards > 1 {
			res, err = rn.RunShardOne(spec, mode, *u, *shards, 0, *rebal)
		} else {
			res, err = rn.RunOne(spec, mode, *u, 0, 0)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%-6s qps=%.3g reduction=%.3f mean_latency=%v  ",
			mode, res.Throughput, res.ReductionRatio(), res.Latency.Mean().Round(time.Millisecond))
		for _, s := range stats.Stages() {
			if res.Totals.Elapsed[s] > 0 {
				fmt.Printf("%s=%v ", s, res.Totals.Elapsed[s].Round(time.Millisecond))
			}
		}
		if res.Tier != nil {
			ts := res.Tier
			fmt.Printf(" tier: resident=%d cold=%d runs=%d disk_kb=%d faults=%d promotions=%d demotions=%d",
				ts.ResidentKeys, ts.ColdKeys, ts.ColdRanges, ts.DiskBytes/1024, ts.Faults, ts.Promotions, ts.Demotions)
		}
		if res.ShardStats != nil {
			fmt.Printf(" %s", res.ShardStats)
		} else {
			allocs, bytes := res.Mem.PerBatch(res.Batches)
			fmt.Printf(" allocs/batch=%.0f KB/batch=%.0f gc_pause=%v",
				allocs, bytes/1024, time.Duration(res.Mem.PauseNs).Round(time.Microsecond))
		}
		fmt.Println()
	}
	if reg != nil {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
