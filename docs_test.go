package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the repository's
// documentation bar: every exported type, function, method, and
// constant/variable group in non-test source files must carry a doc
// comment. This keeps the public API godoc-complete as the codebase
// grows.
func TestExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, fset.Position(d.Pos()).String()+": func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							missing = append(missing, fset.Position(s.Pos()).String()+": type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								missing = append(missing, fset.Position(s.Pos()).String()+": "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// TestPackagesHaveDocComments requires a package-level doc comment in
// every library package (one file per package must document it).
func TestPackagesHaveDocComments(t *testing.T) {
	documented := map[string]bool{}
	seen := map[string]bool{}
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		if f.Doc != nil {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range seen {
		if !documented[dir] {
			t.Errorf("package in %s has no package doc comment", dir)
		}
	}
}
