package qtrans

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/btree"
	"repro/internal/keys"
	"repro/internal/tier"
	"repro/internal/wal"
)

// SyncPolicy selects when the write-ahead log fsyncs; see the
// durability model in DESIGN.md §7 and the fsync sweep in
// EXPERIMENTS.md.
type SyncPolicy = wal.SyncPolicy

// Fsync policies (the zero value is SyncAlways).
const (
	// SyncAlways fsyncs every batch before it is applied: an
	// acknowledged batch survives any crash.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs from a background ticker; a crash loses at
	// most the last interval's batches.
	SyncInterval = wal.SyncInterval
	// SyncOff leaves flushing to the OS; a crash may lose any unflushed
	// suffix. Recovery still restores a whole-batch prefix.
	SyncOff = wal.SyncOff
)

// Durability configures crash-safe operation (DESIGN.md §7). The zero
// value — no directory — leaves durability off with semantics and
// performance identical to previous releases.
//
// With Dir set, Open recovers the directory's snapshot and write-ahead
// log before serving, every batch's post-QSAT surviving queries are
// logged before any effect reaches tree or cache, and Checkpoint
// writes an atomic snapshot that truncates the log. After any crash —
// even mid-write — reopening yields the state after a whole-batch
// prefix of the committed stream; under SyncAlways that prefix
// includes every acknowledged batch.
type Durability struct {
	// Dir is the durability directory (snapshot + log segments). Empty
	// means durability off.
	Dir string
	// Sync is the fsync policy (zero value = SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period under the SyncInterval policy
	// (0 = 50ms).
	SyncInterval time.Duration
	// SegmentSize rotates log segments at this size (0 = 4 MiB).
	SegmentSize int64

	// fs overrides the filesystem (fault-injection tests only).
	fs wal.FS
}

func (d Durability) walOptions() wal.Options {
	return wal.Options{
		FS:           d.fs,
		SegmentSize:  d.SegmentSize,
		Sync:         d.Sync,
		SyncInterval: d.SyncInterval,
	}
}

// openDurable recovers Dir's snapshot and log into a fresh DB and
// attaches the commit hooks, so every later batch is logged before it
// is applied. Works identically for single-engine and sharded DBs: the
// log records query streams, not shard assignments, so a directory
// written with one shard count reopens under any other.
func openDurable(opts Options) (*DB, error) {
	wo := opts.Durability.walOptions()
	wo.Metrics = opts.Metrics
	rec, err := wal.Recover(opts.Durability.Dir, wo)
	if err != nil {
		return nil, err
	}
	var tree *btree.Tree
	var snapRes *tier.Residency
	if rec.SnapshotPayload != nil {
		treeBytes := rec.SnapshotPayload
		if isTieredSnapshot(treeBytes) {
			if opts.Tiered.Dir == "" {
				return nil, fmt.Errorf("qtrans: %s holds a tiered snapshot; reopen with Options.Tiered", opts.Durability.Dir)
			}
			treeBytes, snapRes, err = splitTieredSnapshot(rec.SnapshotPayload)
			if err != nil {
				return nil, fmt.Errorf("qtrans: corrupt tiered snapshot in %s: %w", opts.Durability.Dir, err)
			}
		}
		tree, err = btree.LoadLayout(bytes.NewReader(treeBytes), opts.Order, opts.layout())
		if err != nil {
			return nil, fmt.Errorf("qtrans: corrupt snapshot in %s: %w", opts.Durability.Dir, err)
		}
		opts.Order = tree.Order()
	}
	db, err := build(opts, tree)
	if err != nil {
		return nil, err
	}

	// Replay committed batches logged after the snapshot, in commit
	// order, through the normal batch path (the surviving queries fully
	// determine each batch's state effect). The commit hook is not yet
	// attached, so replay does not re-log. On a tiered DB the replay
	// runs on the raw inner engine — promotions logged before the
	// crash replay as plain insert batches, and the tier wrapper is
	// attached only afterwards so no replayed query can trigger a
	// spurious fault-in.
	rs := keys.NewResultSet(0)
	for _, b := range rec.Batches {
		keys.Number(b)
		rs.Reset(len(b))
		db.eng.ProcessBatch(b, rs)
	}

	// Reconcile the tier directory with the replayed state: the
	// manifest is the authority for which ranges are cold, and their
	// runs override whatever the replay rebuilt for those keys
	// (demoted keys replay hot because their original inserts are
	// still in the log; the purge removes them again).
	if opts.Tiered.Dir != "" {
		st, err := tier.Open(opts.tierConfig(), false)
		if err != nil {
			db.eng.Close()
			return nil, err
		}
		if snapRes != nil && len(snapRes.ColdRuns()) > 0 && !st.Recovered() {
			db.eng.Close()
			return nil, fmt.Errorf("qtrans: snapshot in %s references cold runs but tier directory %s has no manifest (tier state lost)",
				opts.Durability.Dir, opts.Tiered.Dir)
		}
		var inner tier.Inner = db.single
		if db.sharded != nil {
			inner = db.sharded
		}
		te := tier.NewEngine(inner, st, opts.Tiered.MaxActionsPerBatch)
		te.SetGate(&db.gate)
		te.PurgeCold()
		db.eng, db.tier = te, te
	}

	log, err := rec.OpenLog()
	if err != nil {
		db.eng.Close()
		return nil, err
	}
	db.log = log
	db.durDir = opts.Durability.Dir
	db.durFS = opts.Durability.fs
	if db.durFS == nil {
		db.durFS = wal.OS()
	}
	if db.single != nil {
		db.single.SetCommitter(log)
	} else {
		db.sharded.SetCommitter(log)
	}
	if db.tier != nil {
		db.tier.SetLogger(log)
	}
	return db, nil
}

// Tiered snapshot payload (inside the QSN1 snapshot envelope):
//
//	magic    [4]byte "QTS1"
//	treeLen  u64
//	tree     treeLen bytes (the hot tree, QBT3)
//	residency remaining bytes (QTM1, self-validating)
//
// Only hot state and the residency map are snapshotted — cold runs
// stay where they are, so Checkpoint never materializes cold data and
// peak memory stays bounded by the resident budget.

var tieredSnapMagic = [4]byte{'Q', 'T', 'S', '1'}

func isTieredSnapshot(payload []byte) bool {
	return len(payload) >= 4 && [4]byte(payload[0:4]) == tieredSnapMagic
}

// splitTieredSnapshot separates a tiered snapshot payload into the hot
// tree bytes and the decoded residency map.
func splitTieredSnapshot(payload []byte) ([]byte, *tier.Residency, error) {
	if len(payload) < 12 {
		return nil, nil, fmt.Errorf("short payload (%d bytes)", len(payload))
	}
	tl := binary.LittleEndian.Uint64(payload[4:12])
	if tl > uint64(len(payload)-12) {
		return nil, nil, fmt.Errorf("tree length %d exceeds payload", tl)
	}
	res, err := tier.DecodeResidency(payload[12+tl:])
	if err != nil {
		return nil, nil, err
	}
	return payload[12 : 12+tl], res, nil
}

// Checkpoint writes an atomic snapshot of the current state into the
// durability directory and truncates the log segments it makes
// obsolete, bounding recovery time. It waits for in-flight batches at
// a batch boundary (it may be called while a RunStream or Service is
// active) and is crash-safe at every point: until the snapshot's
// final rename the previous snapshot and full log remain authoritative.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return fmt.Errorf("qtrans: Checkpoint requires Options.Durability.Dir")
	}
	if err := db.Err(); err != nil {
		return err
	}
	db.gate.Lock()
	defer db.gate.Unlock()
	// No batch is in flight: every batch with LSN <= lsn is fully
	// applied and none beyond is started, so the dump is exactly the
	// log's prefix state.
	lsn := db.log.LastLSN()
	if err := wal.WriteSnapshot(db.durFS, db.durDir, lsn, func(w io.Writer) error {
		if db.tier != nil {
			return db.saveTieredLocked(w)
		}
		return db.saveLocked(w)
	}); err != nil {
		return err
	}
	return db.log.TruncateObsolete(lsn)
}

// saveTieredLocked writes the tiered snapshot payload: the hot tree
// plus the residency map, atomically together (the caller wraps this
// in WriteSnapshot's temp+rename). Cold runs are not materialized —
// they are immutable files already on disk, and the manifest remains
// the recovery authority for them; the embedded residency copy guards
// against a lost tier directory.
func (db *DB) saveTieredLocked(w io.Writer) error {
	var tree bytes.Buffer
	if db.sharded != nil {
		ks, vs := db.sharded.Dump()
		t, err := btree.BulkLoadLayout(db.sharded.Order(), db.layout, ks, vs)
		if err != nil {
			return err
		}
		if err := t.Save(&tree); err != nil {
			return err
		}
	} else {
		db.eng.Flush()
		if err := db.single.Processor().Tree().Save(&tree); err != nil {
			return err
		}
	}
	var hdr [12]byte
	copy(hdr[0:4], tieredSnapMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(tree.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(tree.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(db.tier.Store().EncodedResidency())
	return err
}

// Err reports the DB's sticky durability failure, if any. Once a log
// append or fsync has failed, the failing batch and every later one
// are dropped without being applied (state never runs ahead of the
// log) and Err returns the cause; results produced after the failure
// are unspecified and no further mutations reach the store.
func (db *DB) Err() error {
	if db.tier != nil {
		if err := db.tier.Err(); err != nil {
			return err
		}
	}
	if db.single != nil {
		if err := db.single.CommitErr(); err != nil {
			return err
		}
	}
	if db.sharded != nil {
		if err := db.sharded.CommitErr(); err != nil {
			return err
		}
	}
	if db.log != nil {
		return db.log.Err()
	}
	return nil
}
