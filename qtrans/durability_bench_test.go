package qtrans

import (
	"testing"
	"time"
)

// BenchmarkDurability measures the price of crash safety on the real
// filesystem: the durability-off baseline against the WAL under each
// fsync policy (EXPERIMENTS.md "Durability: the fsync sweep"). The
// dominant term under SyncAlways is the per-batch fsync; SyncInterval
// amortizes it at the cost of a bounded-loss window; SyncOff leaves
// only the sequential log write.
func BenchmarkDurability(b *testing.B) {
	const batchSize = 1024
	arms := []struct {
		name string
		dur  func(dir string) Durability
	}{
		{"off", func(string) Durability { return Durability{} }},
		{"wal-always", func(dir string) Durability {
			return Durability{Dir: dir, Sync: SyncAlways}
		}},
		{"wal-interval", func(dir string) Durability {
			return Durability{Dir: dir, Sync: SyncInterval, SyncInterval: 10 * time.Millisecond}
		}},
		{"wal-off", func(dir string) Durability {
			return Durability{Dir: dir, Sync: SyncOff}
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			db, err := Open(Options{
				Workers:       2,
				CacheCapacity: 1 << 14,
				Durability:    arm.dur(b.TempDir()),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			batches := make([]*Batch, 8)
			for i := range batches {
				nb := NewBatch()
				for q := 0; q < batchSize; q++ {
					k := Key((i*batchSize + q*7) % (1 << 16))
					if q%4 == 0 {
						nb.Search(k)
					} else {
						nb.Insert(k, Value(q))
					}
				}
				batches[i] = nb
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				db.Run(batches[i%len(batches)])
			}
			busy := time.Since(start)
			b.StopTimer()
			if err := db.Err(); err != nil {
				b.Fatal(err)
			}
			if busy > 0 {
				b.ReportMetric(float64(batchSize*b.N)/busy.Seconds(), "qps")
			}
		})
	}
}
