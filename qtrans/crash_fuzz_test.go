package qtrans

import (
	"testing"

	"repro/internal/faultfs"
	"repro/internal/keys"
	"repro/internal/oracle"
)

// FuzzCrashRecovery is the durability proof (DESIGN.md §7): it runs a
// fuzzer-chosen workload against a durable DB over the fault-injecting
// filesystem, kills the "machine" at an arbitrary write offset (losing
// an arbitrary unsynced suffix per file), recovers, and checks that the
// recovered store equals the serial oracle after some whole-batch
// prefix of the workload — and, under SyncAlways, a prefix covering
// every batch that was acknowledged before the cut.
//
// The config byte sweeps the engine matrix: unsharded and Shards=4,
// serial and pipelined streams, with and without a mid-run checkpoint,
// reopening under the same or a different shard count, and running the
// pre-crash DB with the dense node-layout ablation (bit 4). Recovery
// always reopens with the default gapped layout, so that arm also
// proves a dense-written snapshot (v2 layout byte = dense) restores
// into a gapped tree. The workload mixes all five operations: range
// scans take the extended execution path but add no log records, while
// RMW effects must replay from the log like any other write.
//
// Bit 5 runs the DB tiered (DESIGN.md §14) with a budget tiny enough
// that the 64-key space churns through demotions and promotions
// mid-workload, so the power cut lands mid-run-write, mid-demotion, or
// mid-promotion: a torn run temp or unrenamed manifest must be
// discarded on reopen, a synced promotion log batch must reconcile
// with a manifest that did or did not flip, and in every case the
// recovered state must still be a whole-batch prefix covering every
// acknowledged batch.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, byte(0), uint16(50), uint16(1))
	f.Add([]byte{9, 9, 9, 1, 1, 200, 30, 4, 0, 255, 17, 23, 8, 8}, byte(1), uint16(200), uint16(7))
	f.Add([]byte{100, 2, 3, 100, 5, 100, 7, 8, 100, 10}, byte(3), uint16(400), uint16(42))
	f.Add([]byte{5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(7), uint16(90), uint16(3))
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}, byte(15), uint16(1000), uint16(9))
	f.Add([]byte{42}, byte(31), uint16(0), uint16(0))
	f.Add([]byte{7, 1, 40, 7, 3, 0, 9, 1, 41, 9, 2, 0, 11, 1, 42, 11, 0, 0}, byte(20), uint16(300), uint16(5))
	// Scan (op 4) and RMW (op 5) arms: scans never touch the log;
	// RMW effects must be durably replayed like any other write.
	f.Add([]byte{10, 1, 40, 10, 5, 2, 20, 4, 63, 10, 5, 3, 10, 0, 0, 20, 5, 9}, byte(5), uint16(150), uint16(11))
	f.Add([]byte{1, 5, 8, 2, 5, 8, 3, 5, 9, 1, 4, 200, 2, 4, 100, 3, 3, 0}, byte(9), uint16(80), uint16(2))
	// Tiered arms (bit 5): insert-heavy so the tiny budget forces
	// demotions, then writes/scans back into demoted ranges force
	// promotions; varied cut offsets land the power cut inside run
	// writes, manifest renames, and promotion log batches.
	f.Add([]byte{1, 1, 9, 9, 1, 9, 17, 1, 9, 25, 1, 9, 33, 1, 9, 41, 1, 9, 49, 1, 9, 57, 1, 9, 1, 0, 0, 33, 5, 2}, byte(32), uint16(300), uint16(4))
	f.Add([]byte{1, 1, 9, 9, 1, 9, 17, 1, 9, 25, 1, 9, 33, 1, 9, 41, 1, 9, 49, 1, 9, 57, 1, 9, 1, 4, 63, 33, 1, 7}, byte(33), uint16(600), uint16(13))
	f.Add([]byte{2, 1, 5, 10, 1, 5, 18, 1, 5, 26, 1, 5, 34, 1, 5, 42, 1, 5, 2, 3, 0, 10, 5, 2, 18, 0, 0, 26, 4, 20}, byte(36), uint16(900), uint16(21))
	f.Add([]byte{3, 1, 7, 11, 1, 7, 19, 1, 7, 27, 1, 7, 35, 1, 7, 43, 1, 7, 51, 1, 7, 3, 5, 1, 11, 5, 0, 19, 3, 0}, byte(47), uint16(1200), uint16(6))

	f.Fuzz(func(t *testing.T, data []byte, cfg byte, cut uint16, crashSeed uint16) {
		// Decode the workload: 3 bytes per query, batches of 5 queries.
		const batchLen = 5
		var batches [][]keys.Query
		var cur []keys.Query
		for i := 0; i+2 < len(data) && len(batches) < 40; i += 3 {
			k := Key(data[i] % 64) // small key space: collisions exercise QSAT
			switch data[i+1] % 6 {
			case 0:
				cur = append(cur, keys.Search(k))
			case 1, 2:
				cur = append(cur, keys.Insert(k, Value(data[i+2])+1))
			case 3:
				cur = append(cur, keys.Delete(k))
			case 4:
				// Scans are pure reads: they exercise the extended
				// execution path (cache drain, epoch fencing) without
				// adding log records.
				cur = append(cur, keys.Scan(k, k+Key(data[i+2]%32), Value(data[i+2]>>6)))
			default:
				if data[i+2]&1 == 0 {
					cur = append(cur, keys.AddDelta(k, Value(data[i+2])+1))
				} else {
					cur = append(cur, keys.SetIfAbsent(k, Value(data[i+2])+1))
				}
			}
			if len(cur) == batchLen {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			batches = append(batches, cur)
		}

		shards := 1
		if cfg&1 != 0 {
			shards = 4
		}
		pipeline := cfg&2 != 0
		midCheckpoint := cfg&4 != 0
		reopenShards := 1
		if cfg&8 != 0 {
			reopenShards = 4
		}
		denseRun := cfg&16 != 0
		tiered := cfg&32 != 0

		// The oracle state after every whole-batch prefix.
		orc := oracle.New()
		rs := keys.NewResultSet(0)
		prefixes := make([]map[Key]Value, 0, len(batches)+1)
		snap := func() map[Key]Value {
			m := make(map[Key]Value)
			ks, vs := orc.Dump()
			for i := range ks {
				m[ks[i]] = vs[i]
			}
			return m
		}
		prefixes = append(prefixes, snap())
		for _, b := range batches {
			cp := make([]keys.Query, len(b))
			copy(cp, b)
			keys.Number(cp)
			rs.Reset(len(cp))
			orc.ApplyAll(cp, rs)
			prefixes = append(prefixes, snap())
		}

		// Run the workload durably, arming the power cut after `cut`
		// logged bytes, and track how many batches were acknowledged
		// (committed with no sticky error) before the cut.
		fs := faultfs.New()
		// withTier arms the tiered cold store over the same faulting
		// filesystem: a 16-key budget over the 64-key space with 8-key
		// runs keeps ranges demoting and promoting every few batches.
		withTier := func(o Options) Options {
			if tiered {
				o.Tiered = Tiered{
					Dir:             "tier",
					MaxResidentKeys: 16,
					RunKeys:         8,
					HeatBuckets:     8,
					KeyMax:          64,
					fs:              fs,
				}
			}
			return o
		}
		opts := withTier(durOpts(fs, shards, pipeline))
		opts.NoGappedLayout = denseRun
		opts.Durability.SegmentSize = 512 // rotate often under fuzzing
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		fs.CutAfter(int64(cut))
		acked := 0
		run := func() {
			if pipeline {
				in := make(chan *Batch)
				done := make(chan struct{})
				go func() {
					defer close(done)
					i := 0
					db.RunStream(in, func(*Batch, *Results) {
						i++
						if db.Err() == nil {
							acked = i
						}
					})
				}()
				for bi, b := range batches {
					nb := NewBatch()
					nb.qs = append(nb.qs, b...)
					in <- nb
					if midCheckpoint && bi == len(batches)/2 {
						db.Checkpoint() // may fail post-cut; recovery must cope
					}
				}
				close(in)
				<-done
			} else {
				for bi, b := range batches {
					nb := NewBatch()
					nb.qs = append(nb.qs, b...)
					db.Run(nb)
					if db.Err() == nil {
						acked = bi + 1
					}
					if midCheckpoint && bi == len(batches)/2 {
						db.Checkpoint()
					}
				}
			}
		}
		run()

		// Power failure: unsynced bytes resolve to arbitrary per-file
		// prefixes, then the process "dies" (Close stops goroutines; its
		// syncs see already-crashed, disarmed state — harmless).
		fs.Crash(int64(crashSeed))
		db.Close()

		// Recover — possibly under a different shard count — and demand
		// the oracle state after some whole-batch prefix that includes
		// every acknowledged batch (SyncAlways).
		db2, err := Open(withTier(durOpts(fs, reopenShards, pipeline)))
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer db2.Close()
		got := make(map[Key]Value)
		db2.Scan(func(k Key, v Value) bool {
			got[k] = v
			return true
		})
		match := -1
		for pi, want := range prefixes {
			if len(want) != len(got) {
				continue
			}
			same := true
			for k, v := range want {
				if gv, ok := got[k]; !ok || gv != v {
					same = false
					break
				}
			}
			if same {
				// Prefer the longest matching prefix (distinct batch
				// prefixes can coincide on state).
				match = pi
			}
		}
		if match < 0 {
			t.Fatalf("recovered state (%d keys) matches no whole-batch prefix of %d batches", len(got), len(batches))
		}
		if match < acked {
			t.Fatalf("recovered only %d batches but %d were acknowledged under SyncAlways", match, acked)
		}

		// The recovered DB must remain fully usable.
		db2.Put(999999, 1)
		if v, ok := db2.Get(999999); !ok || v != 1 {
			t.Fatal("recovered DB rejects writes")
		}
	})
}
