package qtrans

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// aggressiveAutoshard makes every controller mechanism fire within a
// short test: hair-trigger thresholds, single-step hysteresis, tiny
// migration slices.
func aggressiveAutoshard() Autoshard {
	return Autoshard{
		Enabled:    true,
		Interval:   -1, // manual stepping
		Buckets:    16,
		SplitAbove: 1.1,
		MergeBelow: 0.5,
		Hysteresis: 1,
		MaxStep:    32,
		MaxShards:  6,
		MinShards:  2,
		MinHeat:    1,
	}
}

// scanBatch appends range scans that straddle every plausible shard
// boundary for the keys mixedBatch touches.
func scanBatch(round int) *Batch {
	b := mixedBatch(round)
	base := Key(round * 100)
	b.Scan(0, base+100, 0)
	b.Scan(base/2, base+50, 16)
	return b
}

// TestAutoshardOnIdenticalResults is the facade-level differential half
// of the autoshard contract: a DB that splits, merges, and migrates
// under an aggressive controller must stay byte-identical — point
// results and scan rows — to an identical DB with the controller off.
func TestAutoshardOnIdenticalResults(t *testing.T) {
	base := Options{Order: 8, Workers: 2, CacheCapacity: 16, Shards: 4, ShardKeyMax: 4095}
	plain, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	withAuto := base
	withAuto.Autoshard = aggressiveAutoshard()
	auto, err := Open(withAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()

	for round := 0; round < 12; round++ {
		bp, ba := scanBatch(round), scanBatch(round)
		n := bp.Len()
		rp, ra := plain.Run(bp), auto.Run(ba)
		for pos := 0; pos < n; pos++ {
			gp, okp := rp.Search(pos)
			ga, oka := ra.Search(pos)
			if gp != ga || okp != oka {
				t.Fatalf("round %d pos %d: plain (%+v,%v) != auto (%+v,%v)",
					round, pos, gp, okp, ga, oka)
			}
			sp, okp := rp.Scan(pos)
			sa, oka := ra.Scan(pos)
			if okp != oka || len(sp) != len(sa) {
				t.Fatalf("round %d pos %d: scan shape diverged (%d,%v vs %d,%v)",
					round, pos, len(sp), okp, len(sa), oka)
			}
			for j := range sp {
				if sp[j] != sa[j] {
					t.Fatalf("round %d pos %d row %d: %+v != %+v", round, pos, j, sp[j], sa[j])
				}
			}
		}
		// Two controller steps per round: mixedBatch concentrates each
		// round's traffic on one narrow key range, so splits and
		// boundary moves fire constantly at these thresholds.
		auto.AutoshardStep()
		auto.AutoshardStep()
	}
	if plain.Len() != auto.Len() {
		t.Fatalf("store size diverged: plain %d, auto %d", plain.Len(), auto.Len())
	}
	// The controller must actually have done something, or the test
	// proves nothing.
	st := auto.ShardStats()
	if st.Moves == 0 && st.AutoSplits == 0 {
		t.Fatalf("controller never acted: %+v", st)
	}
}

// TestAutoshardStepUnsharded pins the facade edge: stepping an
// unsharded DB is a harmless no-op reporting one shard.
func TestAutoshardStepUnsharded(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if r := db.AutoshardStep(); r.Shards != 1 || r.Moved != 0 || r.Split || r.Merge {
		t.Fatalf("unsharded step = %+v, want inert 1-shard report", r)
	}
}

// TestAutoshardMetricsExported drives the exporter end to end: after
// batches and controller steps, /metrics (JSON and text) must carry the
// autoshard family — shard count, imbalance, per-shard heat gauges, and
// the step/structural counters.
func TestAutoshardMetricsExported(t *testing.T) {
	opts := Options{
		Order: 8, Workers: 2, CacheCapacity: 16,
		Shards: 2, ShardKeyMax: 4095,
		Metrics:   NewMetrics(),
		Autoshard: aggressiveAutoshard(),
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for round := 0; round < 4; round++ {
		db.Run(mixedBatch(round))
		db.AutoshardStep()
	}

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics did not decode: %v", err)
	}
	if got := snap.Gauges["autoshard_shards"]; got < 2 {
		t.Errorf("autoshard_shards gauge = %d, want >= 2", got)
	}
	if _, ok := snap.Gauges["autoshard_imbalance_permille"]; !ok {
		t.Error("autoshard_imbalance_permille gauge missing")
	}
	if got := snap.Counters["autoshard_steps_total"]; got != 4 {
		t.Errorf("autoshard_steps_total = %d, want 4", got)
	}
	for _, name := range []string{"autoshard_heat_shard_0", "autoshard_heat_shard_1"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("per-shard heat gauge %s missing", name)
		}
	}

	// The text table renders the same families for humans.
	resp, err = http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{"autoshard_shards", "autoshard_heat_shard_0", "autoshard_steps_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("text exporter missing %q:\n%s", want, text)
		}
	}
}

// TestAutoshardRaceHammer runs the background controller at a 1ms tick
// against live batch traffic, streamed batches, snapshot Saves, and
// metrics scrapes — the gate choreography (batches share-lock,
// controller/Save exclusive-lock) must survive the race detector, and
// the final store must match an identical unsharded DB fed the same
// rounds.
func TestAutoshardRaceHammer(t *testing.T) {
	auto := aggressiveAutoshard()
	auto.Interval = time.Millisecond // background loop on
	db, err := Open(Options{
		Order: 8, Workers: 2, CacheCapacity: 16,
		Shards: 3, ShardKeyMax: 4095,
		Metrics:   NewMetrics(),
		Autoshard: auto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	const rounds = 60
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Periodic Saves race the controller for the exclusive gate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := db.Save(io.Discard); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}
	}()
	// Metrics scrapes and read-only accessors ride along.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				resp.Body.Close()
				db.Len()
			}
		}
	}()

	// The single batch runner: plain runs, then a streamed phase.
	for round := 0; round < rounds/2; round++ {
		db.Run(mixedBatch(round))
	}
	in := make(chan *Batch)
	go func() {
		for round := rounds / 2; round < rounds; round++ {
			in <- mixedBatch(round)
		}
		close(in)
	}()
	streamed := 0
	db.RunStream(in, func(b *Batch, r *Results) { streamed++ })
	close(stop)
	wg.Wait()
	if streamed != rounds/2 {
		t.Fatalf("streamed %d batches, want %d", streamed, rounds/2)
	}

	// Differential close: same rounds through a plain unsharded DB.
	ref, err := Open(Options{Order: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for round := 0; round < rounds; round++ {
		ref.Run(mixedBatch(round))
	}
	if db.Len() != ref.Len() {
		t.Fatalf("store size diverged: hammered %d, reference %d", db.Len(), ref.Len())
	}
	type kv struct {
		k Key
		v Value
	}
	var got, want []kv
	db.Scan(func(k Key, v Value) bool { got = append(got, kv{k, v}); return true })
	ref.Scan(func(k Key, v Value) bool { want = append(want, kv{k, v}); return true })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
