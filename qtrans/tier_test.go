package qtrans

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/tier"
)

// tierOpts is the standard small-scale tiered config used by the
// integration tests: a 256-key space with a 32-key resident budget, so
// a few dozen insert batches force demotions.
func tierOpts(fs *faultfs.FS) Options {
	return Options{
		Order: 8, Workers: 2, CacheCapacity: 16,
		Tiered: Tiered{
			Dir:                "tier",
			MaxResidentKeys:    32,
			RunKeys:            16,
			HeatBuckets:        16,
			KeyMax:             256,
			MaxActionsPerBatch: 2,
			fs:                 fs,
		},
	}
}

// fillTiered inserts keys [0, n) with value k*3+7 in batches of 8, then
// runs a few hot search batches so maintenance demotes the cold tail.
func fillTiered(t *testing.T, db *DB, n int) {
	t.Helper()
	for lo := 0; lo < n; lo += 8 {
		b := NewBatch()
		for k := lo; k < lo+8 && k < n; k++ {
			b.Insert(Key(k), Value(k*3+7))
		}
		db.Run(b)
	}
	for i := 0; i < 10; i++ {
		b := NewBatch()
		for k := 0; k < 8; k++ {
			b.Search(Key(k))
		}
		db.Run(b)
	}
	if err := db.Err(); err != nil {
		t.Fatalf("tiered DB poisoned during fill: %v", err)
	}
}

// coldKey returns one key from a cold residency range, or fails.
func coldKey(t *testing.T, db *DB) Key {
	t.Helper()
	for _, r := range db.tier.Store().Residency().Ranges() {
		if r.State == tier.Cold {
			return r.Lo
		}
	}
	t.Fatal("no cold range after fill")
	return 0
}

// TestTieredOffIdentical locks the zero-value contract: without
// Options.Tiered the DB carries no tier wrapper at all — the engine is
// the same bare *core.Engine as before the feature existed, and
// TierStats reports not-tiered.
func TestTieredOffIdentical(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.tier != nil {
		t.Fatal("tier wrapper present with Tiered off")
	}
	if eng, ok := db.eng.(*core.Engine); !ok || eng != db.single {
		t.Fatalf("engine is %T, want the bare single engine", db.eng)
	}
	if _, ok := db.TierStats(); ok {
		t.Fatal("TierStats ok on an untiered DB")
	}
}

// TestTieredBasicDemotePromote is the happy-path integration lock:
// overflowing the resident budget demotes ranges, cold point reads are
// served from runs, a write into a cold range faults it back in, and
// Len/Scan see the logical whole store throughout.
func TestTieredBasicDemotePromote(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(tierOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 256
	fillTiered(t, db, n)

	st, ok := db.TierStats()
	if !ok {
		t.Fatal("TierStats not ok on a tiered DB")
	}
	if st.Demotions == 0 || st.ColdKeys == 0 || st.ColdRanges == 0 {
		t.Fatalf("no demotions after overflowing the budget: %+v", st)
	}
	if st.DiskBytes == 0 {
		t.Fatalf("cold ranges but no run bytes on disk: %+v", st)
	}
	if got := db.Len(); got != n {
		t.Fatalf("Len = %d with cold ranges, want %d", got, n)
	}

	// A cold point read is served from the run without promoting.
	ck := coldKey(t, db)
	before, _ := db.TierStats()
	if v, found := db.Get(ck); !found || v != Value(ck*3+7) {
		t.Fatalf("Get(cold %d) = (%d, %v), want (%d, true)", ck, v, found, ck*3+7)
	}
	if after, _ := db.TierStats(); after.Promotions != before.Promotions {
		t.Fatal("point search promoted without PromoteReads")
	}
	if db.tier.Store().At(ck).State != tier.Cold {
		t.Fatalf("range at %d no longer cold after point search", ck)
	}

	// A write into the cold range faults it back in.
	db.Put(ck, 9999)
	if after, _ := db.TierStats(); after.Promotions == before.Promotions {
		t.Fatal("write into a cold range did not promote")
	}
	if v, found := db.Get(ck); !found || v != 9999 {
		t.Fatalf("Get(%d) after write = (%d, %v), want (9999, true)", ck, v, found)
	}

	// The logical store is intact and ordered across hot and cold.
	var gotKs []Key
	db.Scan(func(k Key, v Value) bool {
		want := Value(k*3 + 7)
		if k == ck {
			want = 9999
		}
		if v != want {
			t.Fatalf("Scan: key %d = %d, want %d", k, v, want)
		}
		gotKs = append(gotKs, k)
		return true
	})
	if len(gotKs) != n {
		t.Fatalf("Scan saw %d keys, want %d", len(gotKs), n)
	}
	for i, k := range gotKs {
		if k != Key(i) {
			t.Fatalf("Scan out of order at %d: %d", i, k)
		}
	}
	if err := db.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredSaveLoadPortability locks Save's materializing contract: a
// snapshot of a tiered DB (cold runs and all) loads into a plain DB and
// into another tiered DB with identical contents.
func TestTieredSaveLoadPortability(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(tierOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 128
	fillTiered(t, db, n)
	if st, _ := db.TierStats(); st.ColdRanges == 0 {
		t.Fatal("fill produced no cold ranges; snapshot would not cover the tier")
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	check := func(name string, ldb *DB) {
		t.Helper()
		defer ldb.Close()
		if got := ldb.Len(); got != n {
			t.Fatalf("%s: Len = %d, want %d", name, got, n)
		}
		count := 0
		ldb.Scan(func(k Key, v Value) bool {
			if v != Value(k*3+7) {
				t.Fatalf("%s: key %d = %d, want %d", name, k, v, k*3+7)
			}
			count++
			return true
		})
		if count != n {
			t.Fatalf("%s: Scan saw %d keys, want %d", name, count, n)
		}
	}
	plain, err := Load(bytes.NewReader(buf.Bytes()), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("plain", plain)
	tiered, err := Load(bytes.NewReader(buf.Bytes()), tierOpts(faultfs.New()))
	if err != nil {
		t.Fatal(err)
	}
	check("tiered", tiered)
}

// tierDurOpts is tierOpts plus write-ahead logging over the same
// fault-injection filesystem, with a configurable shard count.
func tierDurOpts(fs *faultfs.FS, shards int) Options {
	o := tierOpts(fs)
	o.Shards = shards
	o.ShardKeyMax = 1 << 20
	o.Durability = Durability{Dir: "dur", fs: fs}
	return o
}

// TestTieredCheckpointShardPortable locks two reopen contracts at once:
// a tiered checkpoint resolves against the tier directory under a
// different Options.Shards (residency is shard-count-portable), and a
// reopen WITHOUT Options.Tiered refuses the tiered snapshot loudly
// instead of silently dropping the cold data.
func TestTieredCheckpointShardPortable(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(tierDurOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	fillTiered(t, db, n)
	if st, _ := db.TierStats(); st.ColdRanges == 0 {
		t.Fatal("fill produced no cold ranges; checkpoint would not cover the tier")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// A reopen without Tiered must refuse: the snapshot's cold ranges
	// live only in the tier directory it does not know about.
	plain := tierDurOpts(fs, 1)
	plain.Tiered = Tiered{}
	if _, err := Open(plain); err == nil || !strings.Contains(err.Error(), "tiered snapshot") {
		t.Fatalf("reopen without Tiered: err = %v, want tiered-snapshot refusal", err)
	}

	// A reopen under a different shard count resolves the cold runs.
	db2, err := Open(tierDurOpts(fs, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	st, ok := db2.TierStats()
	if !ok || st.ColdRanges == 0 {
		t.Fatalf("reopened DB lost its cold ranges: ok=%v %+v", ok, st)
	}
	ck := coldKey(t, db2)
	if v, found := db2.Get(ck); !found || v != Value(ck*3+7) {
		t.Fatalf("Get(cold %d) after reopen = (%d, %v), want (%d, true)", ck, v, found, ck*3+7)
	}
	count := 0
	db2.Scan(func(k Key, v Value) bool {
		if v != Value(k*3+7) {
			t.Fatalf("reopened key %d = %d, want %d", k, v, k*3+7)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("reopened Scan saw %d keys, want %d", count, n)
	}
}

// TestTieredRecoverLostTierDir locks the fatal recovery path: a
// checkpoint that references cold runs cannot reopen against a tier
// directory whose manifest is gone — that is acked data lost, and Open
// must say so rather than serve a hole.
func TestTieredRecoverLostTierDir(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(tierDurOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, db, 128)
	if st, _ := db.TierStats(); st.ColdRanges == 0 {
		t.Fatal("fill produced no cold ranges")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := fs.Remove(filepath.Join("tier", "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(tierDurOpts(fs, 1)); err == nil || !strings.Contains(err.Error(), "tier state lost") {
		t.Fatalf("reopen with lost manifest: err = %v, want tier-state-lost refusal", err)
	}
}
