package qtrans

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// durOpts returns small-footprint Options with durability on fs.
func durOpts(fs *faultfs.FS, shards int, pipeline bool) Options {
	return Options{
		Order:         8,
		Workers:       2,
		CacheCapacity: 16,
		Shards:        shards,
		Pipeline:      pipeline,
		ShardKeyMax:   1 << 20,
		Durability:    Durability{Dir: "dur", fs: fs},
	}
}

func dump(db *DB) (ks []Key, vs []Value) {
	db.Scan(func(k Key, v Value) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return
}

func TestDurableRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		fs := faultfs.New()
		db, err := Open(durOpts(fs, shards, false))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := 0; i < 50; i++ {
			db.Put(Key(i*3), Value(i))
		}
		db.Remove(9)
		if err := db.Err(); err != nil {
			t.Fatal(err)
		}
		db.Close()

		db2, err := Open(durOpts(fs, shards, false))
		if err != nil {
			t.Fatalf("shards=%d reopen: %v", shards, err)
		}
		if n := db2.Len(); n != 49 {
			t.Fatalf("shards=%d: recovered %d keys, want 49", shards, n)
		}
		if v, ok := db2.Get(3); !ok || v != 1 {
			t.Fatalf("shards=%d: Get(3) = %d %v", shards, v, ok)
		}
		if _, ok := db2.Get(9); ok {
			t.Fatalf("shards=%d: deleted key recovered", shards)
		}
		// The reopened DB keeps logging.
		db2.Put(777, 42)
		db2.Close()
		db3, err := Open(durOpts(fs, shards, false))
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := db3.Get(777); !ok || v != 42 {
			t.Fatalf("shards=%d: post-recovery write lost", shards)
		}
		db3.Close()
	}
}

func TestDurableShardCountPortable(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(durOpts(fs, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put(Key(i*11), Value(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		db.Put(Key(i*11), Value(i))
	}
	db.Close()

	// Same directory, different shard count: snapshot + log replay must
	// be shard-count-portable.
	db2, err := Open(durOpts(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Len(); n != 150 {
		t.Fatalf("recovered %d keys under different shard count, want 150", n)
	}
	for _, i := range []int{0, 99, 100, 149} {
		if v, ok := db2.Get(Key(i * 11)); !ok || v != Value(i) {
			t.Fatalf("key %d: %d %v", i*11, v, ok)
		}
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	fs := faultfs.New()
	opts := durOpts(fs, 1, false)
	opts.Durability.SegmentSize = 256 // force many segments
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put(Key(i), Value(i))
	}
	before, _ := fs.List("dur")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.List("dur")
	segs := func(names []string) (n int) {
		for _, s := range names {
			if strings.HasPrefix(s, "wal-") {
				n++
			}
		}
		return
	}
	if segs(after) >= segs(before) || segs(after) != 1 {
		t.Fatalf("checkpoint did not truncate: %d -> %d segments", segs(before), segs(after))
	}
	db.Close()
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Len(); n != 200 {
		t.Fatalf("recovered %d keys after checkpoint, want 200", n)
	}
}

func TestDurablePowerCutPoisons(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(durOpts(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		db.Put(Key(i), Value(i))
	}
	if err := db.Err(); err != nil {
		t.Fatal(err)
	}
	fs.CutAfter(10)
	for i := 20; i < 40; i++ {
		db.Put(Key(i), Value(i))
	}
	if db.Err() == nil {
		t.Fatal("engine not poisoned after power cut")
	}
	// Dropped batches must not have been applied: the live tree still
	// matches the pre-cut state (at most one batch may have committed
	// on the remaining budget).
	n := db.Len()
	if n > 21 {
		t.Fatalf("poisoned engine applied dropped batches: %d keys", n)
	}
	fs.Crash(7)
	db.Close()

	db2, err := Open(durOpts(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// SyncAlways: every acked (pre-cut) batch survives.
	for i := 0; i < 20; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != Value(i) {
			t.Fatalf("acked key %d lost: %d %v", i, v, ok)
		}
	}
}

// TestDirtyCacheSavedAndRecovered pins the satellite-3 bug class: keys
// whose latest value lives only in the top-K cache (dirty, never
// flushed) must appear in portable Save exports, in Checkpoint
// snapshots, and in WAL-only recovery.
func TestDirtyCacheSavedAndRecovered(t *testing.T) {
	fs := faultfs.New()
	db, err := Open(durOpts(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	// CacheCapacity is 16: these 8 hot keys stay resident and dirty.
	for i := 0; i < 8; i++ {
		db.Put(Key(i), Value(100+i))
		db.Put(Key(i), Value(200+i)) // second write: cache-resident update
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lo, err := Load(bytes.NewReader(buf.Bytes()), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if v, ok := lo.Get(Key(i)); !ok || v != Value(200+i) {
			t.Fatalf("Save/Load lost dirty cache entry %d: %d %v", i, v, ok)
		}
	}
	lo.Close()

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(durOpts(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 8; i++ {
		if v, ok := db2.Get(Key(i)); !ok || v != Value(200+i) {
			t.Fatalf("checkpoint lost dirty cache entry %d: %d %v", i, v, ok)
		}
	}
}

// TestSaveDuringStream pins the satellite-2 race: Save (and Checkpoint)
// while a pipelined sharded stream is running must observe a whole-batch
// boundary. Batch N writes keys 0..K-1 := N, so any batch-boundary
// snapshot holds K equal values; a torn snapshot shows a mix. Run under
// -race this also proves the locking discipline.
func TestSaveDuringStream(t *testing.T) {
	const K, batches = 32, 200
	for _, tc := range []struct {
		shards   int
		pipeline bool
	}{{1, false}, {1, true}, {4, false}, {4, true}} {
		fs := faultfs.New()
		db, err := Open(durOpts(fs, tc.shards, tc.pipeline))
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan *Batch)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			db.RunStream(in, func(*Batch, *Results) {})
		}()
		done := make(chan struct{})
		var saveErr error
		var snaps [][]byte
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := db.Save(&buf); err != nil {
					saveErr = err
					return
				}
				snaps = append(snaps, buf.Bytes())
				if err := db.Checkpoint(); err != nil {
					saveErr = err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		for n := 1; n <= batches; n++ {
			b := NewBatch()
			for k := 0; k < K; k++ {
				b.Insert(Key(k*311), Value(n))
			}
			in <- b
		}
		close(in)
		close(done)
		wg.Wait()
		if saveErr != nil {
			t.Fatalf("%+v: save during stream: %v", tc, saveErr)
		}
		for si, snap := range snaps {
			lo, err := Load(bytes.NewReader(snap), Options{Workers: 2})
			if err != nil {
				t.Fatalf("%+v: snapshot %d corrupt: %v", tc, si, err)
			}
			_, vs := dump(lo)
			for _, v := range vs {
				if v != vs[0] {
					t.Fatalf("%+v: snapshot %d caught a half-applied batch: %v", tc, si, vs)
				}
			}
			lo.Close()
		}
		if err := db.Err(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		db.Close()
	}
}
