// Metrics surface of the facade: Options.Metrics turns on the
// zero-dependency instrumentation of internal/metrics across the whole
// batch path (QSAT transform, PALM stages, shard split/merge, WAL
// append/fsync, batcher queue/fill, top-K cache counters). With
// Options.Metrics nil — the zero Options — every hot path stays
// byte-identical to the uninstrumented build: no clock reads, no
// atomics, no allocations (metrics_test.go pins all three).
package qtrans

import (
	"errors"
	"net/http"

	"repro/internal/metrics"
)

// errNoMetrics is returned by ServeMetrics on a DB opened without
// Options.Metrics.
var errNoMetrics = errors.New("qtrans: DB opened without Options.Metrics")

// Metrics is the engine's metrics registry: lock-cheap counters and
// gauges plus log-bucketed latency histograms, snapshotted on demand.
// One registry may be shared by several DBs (their counters then
// aggregate) or inspected directly via Snapshot.
type Metrics = metrics.Registry

// MetricsSnapshot is a point-in-time copy of every metric in a
// registry; it JSON-encodes in the same shape the /metrics endpoint
// serves.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an empty registry to pass as Options.Metrics.
func NewMetrics() *Metrics { return metrics.New() }

// Metrics returns the registry the DB records into, or nil when the DB
// was opened without one.
func (db *DB) Metrics() *Metrics { return db.met }

// MetricsHandler returns the HTTP exporter for the DB's registry:
// /metrics (JSON; ?format=text for a table), /healthz (503 once the
// DB's sticky durability error is set), and /debug/pprof/*. It returns
// nil when the DB was opened without Options.Metrics.
func (db *DB) MetricsHandler() http.Handler {
	if db.met == nil {
		return nil
	}
	return metrics.Handler(db.met, db.Err)
}

// ServeMetrics starts the exporter on addr (e.g. ":9100", or
// "127.0.0.1:0" for an ephemeral port) in a background goroutine,
// returning the bound address and a stop function. The DB must have
// been opened with Options.Metrics.
func (db *DB) ServeMetrics(addr string) (bound string, stop func() error, err error) {
	if db.met == nil {
		return "", nil, errNoMetrics
	}
	return metrics.Serve(addr, db.met, db.Err)
}
