package qtrans

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestOpenZeroOptionsIsFull(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put(1, 10)
	if v, ok := db.Get(1); !ok || v != 10 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
}

func TestAllOptimizationLevels(t *testing.T) {
	for _, opt := range []Optimization{None, IntraBatch, Full, Simulation} {
		db, err := Open(Options{Optimization: opt, Workers: 2, Order: 16, CacheCapacity: 64})
		if err != nil {
			t.Fatalf("opt %v: %v", opt, err)
		}
		b := NewBatch()
		insPos := b.Insert(5, 55)
		searchPos := b.Search(5)
		delPos := b.Delete(5)
		afterPos := b.Search(5)
		res := db.Run(b)

		if r, ok := res.Search(searchPos); !ok || !r.Found || r.Value != 55 {
			t.Fatalf("opt %v: search = %+v, %v", opt, r, ok)
		}
		if r, ok := res.Search(afterPos); !ok || r.Found {
			t.Fatalf("opt %v: search after delete = %+v, %v", opt, r, ok)
		}
		if _, ok := res.Search(insPos); ok {
			t.Fatalf("opt %v: insert position carries a result", opt)
		}
		if _, ok := res.Search(delPos); ok {
			t.Fatalf("opt %v: delete position carries a result", opt)
		}
		db.Close()
	}
}

func TestBatchLenAndPositions(t *testing.T) {
	b := NewBatch()
	if b.Len() != 0 {
		t.Fatal("new batch not empty")
	}
	p0 := b.Insert(1, 1)
	p1 := b.Search(1)
	p2 := b.Delete(1)
	if p0 != 0 || p1 != 1 || p2 != 2 || b.Len() != 3 {
		t.Fatalf("positions %d %d %d len %d", p0, p1, p2, b.Len())
	}
}

func TestLenAndScanFlushCache(t *testing.T) {
	db, err := Open(Options{Workers: 2, CacheCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put(Key(i), Value(i*2))
	}
	db.Remove(50)
	if n := db.Len(); n != 99 {
		t.Fatalf("Len = %d, want 99", n)
	}
	count := 0
	prev := Key(0)
	db.Scan(func(k Key, v Value) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan not ascending at %d", k)
		}
		if v != Value(k)*2 {
			t.Fatalf("Scan: value of %d = %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != 99 {
		t.Fatalf("scan visited %d", count)
	}
}

func TestWarm(t *testing.T) {
	db, err := Open(Options{Workers: 1, CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put(7, 77)
	db.Warm([]Key{7})
	if v, ok := db.Get(7); !ok || v != 77 {
		t.Fatalf("Get after Warm = %d,%v", v, ok)
	}
	if st := db.LastBatchStats(); st.CacheHits == 0 {
		t.Fatal("warmed key missed the cache")
	}
}

func TestRunMatchesMapSemantics(t *testing.T) {
	db, err := Open(Options{Workers: 3, Order: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := rand.New(rand.NewSource(17))
	model := map[Key]Value{}
	for round := 0; round < 5; round++ {
		b := NewBatch()
		type expect struct {
			pos   int
			v     Value
			found bool
		}
		var expects []expect
		for i := 0; i < 2000; i++ {
			k := Key(r.Intn(300))
			switch r.Intn(3) {
			case 0:
				v, found := model[k]
				expects = append(expects, expect{b.Search(k), v, found})
			case 1:
				v := Value(r.Intn(10000))
				b.Insert(k, v)
				model[k] = v
			default:
				b.Delete(k)
				delete(model, k)
			}
		}
		res := db.Run(b)
		for _, e := range expects {
			got, ok := res.Search(e.pos)
			if !ok || got.Found != e.found || (e.found && got.Value != e.v) {
				t.Fatalf("round %d pos %d: got %+v (%v), want %v/%v", round, e.pos, got, ok, e.v, e.found)
			}
		}
	}
	if db.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", db.Len(), len(model))
	}
}

func TestKernelOptionsOffMatchesMapSemantics(t *testing.T) {
	// The Options kernel ablations must reach the engine and change
	// nothing observable: same map semantics with every kernel disabled.
	db, err := Open(Options{Workers: 3, Order: 8,
		NoPathReuse: true, NoBranchlessSearch: true, NoMergeApply: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := rand.New(rand.NewSource(23))
	model := map[Key]Value{}
	for round := 0; round < 3; round++ {
		b := NewBatch()
		type expect struct {
			pos   int
			v     Value
			found bool
		}
		var expects []expect
		for i := 0; i < 1500; i++ {
			k := Key(r.Intn(250))
			switch r.Intn(3) {
			case 0:
				v, found := model[k]
				expects = append(expects, expect{b.Search(k), v, found})
			case 1:
				v := Value(r.Intn(10000))
				b.Insert(k, v)
				model[k] = v
			default:
				b.Delete(k)
				delete(model, k)
			}
		}
		res := db.Run(b)
		for _, e := range expects {
			got, ok := res.Search(e.pos)
			if !ok || got.Found != e.found || (e.found && got.Value != e.v) {
				t.Fatalf("round %d pos %d: got %+v (%v), want %v/%v", round, e.pos, got, ok, e.v, e.found)
			}
		}
	}
	if db.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", db.Len(), len(model))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, err := Open(Options{Workers: 2, Order: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put(Key(i), Value(i*3))
	}
	db.Remove(100)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Len() != 499 {
		t.Fatalf("restored Len = %d", restored.Len())
	}
	if v, ok := restored.Get(250); !ok || v != 750 {
		t.Fatalf("restored Get(250) = %d,%v", v, ok)
	}
	if _, ok := restored.Get(100); ok {
		t.Fatal("removed key restored")
	}
	// The restored DB must be fully operational.
	restored.Put(9999, 1)
	if v, ok := restored.Get(9999); !ok || v != 1 {
		t.Fatalf("restored DB not writable: %d,%v", v, ok)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage")), Options{}); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// TestLoadLegacyV1Snapshot checks a pre-gap ("QBT2") snapshot still
// opens: the DB rebuilds it under the configured layout (gapped by
// default, dense under the ablation) with identical contents.
func TestLoadLegacyV1Snapshot(t *testing.T) {
	n := 200
	body := make([]byte, 12, 12+16*n)
	binary.LittleEndian.PutUint32(body[0:4], 8) // order
	binary.LittleEndian.PutUint64(body[4:12], uint64(n))
	for i := 0; i < n; i++ {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(i*4+2))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(i*9))
		body = append(body, rec[:]...)
	}
	var snap bytes.Buffer
	snap.WriteString("QBT2")
	snap.Write(body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	snap.Write(tail[:])

	for _, dense := range []bool{false, true} {
		db, err := Load(bytes.NewReader(snap.Bytes()), Options{Workers: 2, NoGappedLayout: dense})
		if err != nil {
			t.Fatalf("dense=%v: %v", dense, err)
		}
		if db.Len() != n {
			t.Fatalf("dense=%v: Len = %d, want %d", dense, db.Len(), n)
		}
		for i := 0; i < n; i++ {
			if v, ok := db.Get(Key(i*4 + 2)); !ok || v != Value(i*9) {
				t.Fatalf("dense=%v: Get(%d) = %d,%v", dense, i*4+2, v, ok)
			}
		}
		db.Close()
	}
}

func TestServiceBasics(t *testing.T) {
	db, err := Open(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	svc := db.Serve(ServiceOptions{MaxBatch: 8, MaxDelay: 2 * time.Millisecond})

	if err := svc.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	v, found, err := svc.Get(1)
	if err != nil || !found || v != 100 {
		t.Fatalf("Get = %d,%v,%v", v, found, err)
	}
	if err := svc.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := svc.Get(1); found {
		t.Fatal("removed key found")
	}
	wait, err := svc.PutAsync(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	wait()
	svc.Close()
	if _, _, err := svc.Get(2); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	// DB remains usable after service close.
	if v, ok := db.Get(2); !ok || v != 20 {
		t.Fatalf("db.Get(2) = %d,%v", v, ok)
	}
}

// TestServiceScanAndRMW covers the online scan and RMW surface added
// when the batcher Future grew its scan-rows side channel.
func TestServiceScanAndRMW(t *testing.T) {
	db, err := Open(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	svc := db.Serve(ServiceOptions{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer svc.Close()

	for k := Key(10); k < 20; k++ {
		if err := svc.Put(k, Value(k*10)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := svc.Scan(12, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{Key: 12, Value: 120}, {Key: 13, Value: 130}, {Key: 14, Value: 140}, {Key: 15, Value: 150}}
	if len(rows) != len(want) {
		t.Fatalf("Scan rows = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("Scan row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	if rows, err = svc.Scan(10, 20, 3); err != nil || len(rows) != 3 {
		t.Fatalf("limited Scan = %v, %v", rows, err)
	}
	if rows, err = svc.Scan(1000, 2000, 0); err != nil || len(rows) != 0 {
		t.Fatalf("empty Scan = %v, %v", rows, err)
	}

	if old, existed, err := svc.AddDelta(500, 3); err != nil || existed || old != 0 {
		t.Fatalf("AddDelta absent = %d,%v,%v", old, existed, err)
	}
	if old, existed, err := svc.AddDelta(500, 4); err != nil || !existed || old != 3 {
		t.Fatalf("AddDelta present = %d,%v,%v", old, existed, err)
	}
	if old, existed, err := svc.SetIfAbsent(500, 99); err != nil || !existed || old != 7 {
		t.Fatalf("SetIfAbsent present = %d,%v,%v", old, existed, err)
	}
	if v, found, _ := svc.Get(500); !found || v != 7 {
		t.Fatalf("SetIfAbsent overwrote: %d,%v", v, found)
	}
	if _, existed, err := svc.SetIfAbsent(501, 11); err != nil || existed {
		t.Fatalf("SetIfAbsent absent existed=%v err=%v", existed, err)
	}
	if v, found, _ := svc.Get(501); !found || v != 11 {
		t.Fatalf("SetIfAbsent absent: %d,%v", v, found)
	}
	if svc.Batcher() == nil {
		t.Fatal("Batcher accessor returned nil")
	}
}

func TestServiceConcurrentClients(t *testing.T) {
	db, err := Open(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	svc := db.Serve(ServiceOptions{MaxBatch: 32, MaxDelay: time.Millisecond})
	defer svc.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := Key(w * 10000)
			for i := 0; i < 40; i++ {
				k := base + Key(i)
				if err := svc.Put(k, Value(i)); err != nil {
					errs <- err
					return
				}
				v, found, err := svc.Get(k)
				if err != nil {
					errs <- err
					return
				}
				if !found || v != Value(i) {
					errs <- errStale
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

var errStale = &staleError{}

type staleError struct{}

func (*staleError) Error() string { return "stale read through service" }

// TestBatchScanAndRMW exercises the extended facade API end to end —
// range scans (with limit), AddDelta, and SetIfAbsent in one batch with
// in-batch visibility — across the single-engine and sharded builds.
func TestBatchScanAndRMW(t *testing.T) {
	for _, shards := range []int{0, 3} {
		db, err := Open(Options{Optimization: Full, Workers: 2, Order: 16,
			CacheCapacity: 64, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for k := Key(0); k < 100; k += 10 {
			db.Put(k, Value(k))
		}

		b := NewBatch()
		all := b.Scan(0, 1000, 0)      // 10 rows
		limited := b.Scan(0, 1000, 3)  // first 3
		addNew := b.AddDelta(5, 7)     // absent: result (0,false), stores 7
		addOld := b.AddDelta(20, 1)    // present: result (20,true), stores 21
		setAbs := b.SetIfAbsent(6, 66) // absent: stores 66
		setHit := b.SetIfAbsent(30, 1) // present: no-op, result (30,true)
		after := b.Scan(0, 31, 0)      // sees 0,5,6,10,20(=21),30
		res := db.Run(b)

		rows, ok := res.Scan(all)
		if !ok || len(rows) != 10 {
			t.Fatalf("shards=%d: full scan %d rows (%v)", shards, len(rows), ok)
		}
		if r, _ := res.Search(all); !r.Found || r.Value != 10 {
			t.Fatalf("shards=%d: scan point result = %+v", shards, r)
		}
		rows, _ = res.Scan(limited)
		if len(rows) != 3 || rows[2].Key != 20 {
			t.Fatalf("shards=%d: limited scan = %v", shards, rows)
		}
		if r, _ := res.Search(addNew); r.Found {
			t.Fatalf("shards=%d: AddDelta on absent = %+v", shards, r)
		}
		if r, _ := res.Search(addOld); !r.Found || r.Value != 20 {
			t.Fatalf("shards=%d: AddDelta on present = %+v", shards, r)
		}
		if r, _ := res.Search(setAbs); r.Found {
			t.Fatalf("shards=%d: SetIfAbsent on absent = %+v", shards, r)
		}
		if r, _ := res.Search(setHit); !r.Found || r.Value != 30 {
			t.Fatalf("shards=%d: SetIfAbsent on present = %+v", shards, r)
		}
		rows, _ = res.Scan(after)
		want := []KV{
			{Key: 0, Value: 0}, {Key: 5, Value: 7}, {Key: 6, Value: 66},
			{Key: 10, Value: 10}, {Key: 20, Value: 21}, {Key: 30, Value: 30},
		}
		if len(rows) != len(want) {
			t.Fatalf("shards=%d: after-scan = %v, want %v", shards, rows, want)
		}
		for i := range want {
			if rows[i] != want[i] {
				t.Fatalf("shards=%d: after-scan row %d = %+v, want %+v", shards, i, rows[i], want[i])
			}
		}

		if v, ok := db.Get(5); !ok || v != 7 {
			t.Fatalf("shards=%d: Get(5) = %d,%v after RMW", shards, v, ok)
		}
		db.Close()
	}
}
