package qtrans_test

import (
	"fmt"
	"time"

	"repro/qtrans"
)

// The basic batch workflow: assemble, run, read answers by position.
func Example() {
	db, err := qtrans.Open(qtrans.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	batch := qtrans.NewBatch()
	batch.Insert(100, 7)
	q1 := batch.Search(100)
	batch.Delete(100)
	q2 := batch.Search(100)

	results := db.Run(batch)
	if r, ok := results.Search(q1); ok {
		fmt.Println("before delete:", r.Value, r.Found)
	}
	if r, ok := results.Search(q2); ok {
		fmt.Println("after delete:", r.Value, r.Found)
	}
	// Output:
	// before delete: 7 true
	// after delete: 0 false
}

// Convenience point operations wrap one-query batches.
func ExampleDB_Get() {
	db, _ := qtrans.Open(qtrans.Options{Workers: 1})
	defer db.Close()
	db.Put(1, 11)
	v, found := db.Get(1)
	fmt.Println(v, found)
	// Output: 11 true
}

// Scan flushes the write-back cache and walks the tree in key order.
func ExampleDB_Scan() {
	db, _ := qtrans.Open(qtrans.Options{Workers: 1})
	defer db.Close()
	for _, k := range []qtrans.Key{30, 10, 20} {
		db.Put(k, qtrans.Value(k)*10)
	}
	db.Scan(func(k qtrans.Key, v qtrans.Value) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 10 100
	// 20 200
	// 30 300
}

// The online Service batches individual queries transparently.
func ExampleDB_Serve() {
	db, _ := qtrans.Open(qtrans.Options{Workers: 1})
	defer db.Close()
	svc := db.Serve(qtrans.ServiceOptions{MaxBatch: 16, MaxDelay: time.Millisecond})
	defer svc.Close()

	if err := svc.Put(5, 55); err != nil {
		panic(err)
	}
	v, found, _ := svc.Get(5)
	fmt.Println(v, found)
	// Output: 55 true
}

// Explain classifies a batch's redundancy up front, without running it.
func ExampleExplain() {
	batch := qtrans.NewBatch()
	batch.Search(7)    // representative survives
	batch.Search(7)    // redundant
	batch.Insert(7, 1) // overwritten
	batch.Insert(7, 2) // survives
	batch.Search(7)    // inferred (value 2)
	fmt.Println(qtrans.Explain(batch))
	// Output: 5 queries over 1 distinct keys: 3 eliminated (60.0%) — 1 redundant searches, 1 overwritten defines, 1 inferred returns; 2 survive
}

// QTrans eliminates redundant queries: 1000 searches of one hot key
// reach the tree as a single query.
func ExampleDB_LastBatchStats() {
	db, _ := qtrans.Open(qtrans.Options{Workers: 1, Optimization: qtrans.IntraBatch})
	defer db.Close()
	db.Put(42, 1)

	batch := qtrans.NewBatch()
	for i := 0; i < 1000; i++ {
		batch.Search(42)
	}
	db.Run(batch)
	st := db.LastBatchStats()
	fmt.Printf("%d queries -> %d tree queries\n", st.BatchSize, st.RemainingQueries)
	// Output: 1000 queries -> 1 tree queries
}
