package qtrans

import (
	"testing"

	"repro/internal/faultfs"
	"repro/internal/keys"
)

// FuzzTieredEquivalence is the tiered-path correctness proof: a
// fuzzer-chosen workload runs against a tiered DB whose resident budget
// is tiny enough that the 64-key space churns through demotions and
// promotions constantly, and against a plain in-memory DB. Every
// query's result — search values and presence, RMW pre-images, scan
// rows — must be byte-identical between the two, and so must the final
// store contents. This pins the whole tier surface at once: residency
// classification, cold point serves from runs, write/RMW/scan fault-in,
// cache draining on demotion, and the subset batch execution that skips
// cold searches.
//
// The config byte sweeps the tiered matrix: Shards=4 (bit 0),
// PromoteReads (bit 1), a looser budget (bit 2), and multiple
// maintenance actions per batch (bit 3). The plain reference DB is
// always the unsharded default engine, which the rest of the suite pins
// against the serial oracle.
func FuzzTieredEquivalence(f *testing.F) {
	// Insert-heavy prefix to force demotions, then reads, scans, RMWs,
	// and deletes landing in demoted ranges.
	f.Add([]byte{1, 1, 9, 9, 1, 9, 17, 1, 9, 25, 1, 9, 33, 1, 9, 41, 1, 9, 49, 1, 9, 57, 1, 9, 1, 0, 0, 33, 4, 63}, byte(0))
	f.Add([]byte{1, 1, 9, 9, 1, 9, 17, 1, 9, 25, 1, 9, 33, 1, 9, 41, 1, 9, 49, 1, 9, 57, 1, 9, 1, 5, 2, 33, 3, 0}, byte(1))
	f.Add([]byte{2, 1, 5, 10, 1, 5, 18, 1, 5, 26, 1, 5, 34, 1, 5, 42, 1, 5, 2, 0, 0, 10, 4, 40, 18, 5, 1, 26, 3, 0}, byte(2))
	f.Add([]byte{3, 1, 7, 11, 1, 7, 19, 1, 7, 27, 1, 7, 35, 1, 7, 43, 1, 7, 51, 1, 7, 59, 1, 7, 3, 5, 0}, byte(7))
	f.Add([]byte{5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, byte(15))
	f.Add([]byte{63, 1, 1, 0, 1, 1, 32, 1, 1, 63, 0, 0, 0, 4, 255, 32, 5, 3}, byte(8))

	f.Fuzz(func(t *testing.T, data []byte, cfg byte) {
		const batchLen = 5
		var batches [][]keys.Query
		var cur []keys.Query
		for i := 0; i+2 < len(data) && len(batches) < 40; i += 3 {
			k := Key(data[i] % 64)
			switch data[i+1] % 6 {
			case 0:
				cur = append(cur, keys.Search(k))
			case 1, 2:
				cur = append(cur, keys.Insert(k, Value(data[i+2])+1))
			case 3:
				cur = append(cur, keys.Delete(k))
			case 4:
				cur = append(cur, keys.Scan(k, k+Key(data[i+2]%32), Value(data[i+2]>>6)))
			default:
				if data[i+2]&1 == 0 {
					cur = append(cur, keys.AddDelta(k, Value(data[i+2])+1))
				} else {
					cur = append(cur, keys.SetIfAbsent(k, Value(data[i+2])+1))
				}
			}
			if len(cur) == batchLen {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			batches = append(batches, cur)
		}

		shards := 1
		if cfg&1 != 0 {
			shards = 4
		}
		budget := 8
		if cfg&4 != 0 {
			budget = 24
		}
		actions := 1
		if cfg&8 != 0 {
			actions = 3
		}
		tdb, err := Open(Options{
			Order: 8, Workers: 2, CacheCapacity: 16,
			Shards: shards, ShardKeyMax: 1 << 20,
			Tiered: Tiered{
				Dir:                "tier",
				MaxResidentKeys:    budget,
				RunKeys:            8,
				HeatBuckets:        8,
				KeyMax:             64,
				MaxActionsPerBatch: actions,
				PromoteReads:       cfg&2 != 0,
				fs:                 faultfs.New(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tdb.Close()
		pdb, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer pdb.Close()

		for bi, b := range batches {
			tb, pb := NewBatch(), NewBatch()
			tb.qs = append(tb.qs, b...)
			pb.qs = append(pb.qs, b...)
			tr := tdb.Run(tb)
			pr := pdb.Run(pb)
			if err := tdb.Err(); err != nil {
				t.Fatalf("batch %d: tiered DB poisoned: %v", bi, err)
			}
			for pos := range b {
				tres, tok := tr.Search(pos)
				pres, pok := pr.Search(pos)
				if tok != pok || tres != pres {
					t.Fatalf("batch %d pos %d (op %v key %d): tiered (%+v, %v) != plain (%+v, %v)",
						bi, pos, b[pos].Op, b[pos].Key, tres, tok, pres, pok)
				}
				trows, tok2 := tr.Scan(pos)
				prows, pok2 := pr.Scan(pos)
				if tok2 != pok2 || len(trows) != len(prows) {
					t.Fatalf("batch %d pos %d: scan shape tiered (%d, %v) != plain (%d, %v)",
						bi, pos, len(trows), tok2, len(prows), pok2)
				}
				for ri := range trows {
					if trows[ri] != prows[ri] {
						t.Fatalf("batch %d pos %d row %d: tiered %+v != plain %+v",
							bi, pos, ri, trows[ri], prows[ri])
					}
				}
			}
		}

		// Final store: logical contents must be byte-identical.
		if tl, pl := tdb.Len(), pdb.Len(); tl != pl {
			t.Fatalf("final Len: tiered %d != plain %d", tl, pl)
		}
		type kv struct {
			k Key
			v Value
		}
		var tdump, pdump []kv
		tdb.Scan(func(k Key, v Value) bool { tdump = append(tdump, kv{k, v}); return true })
		pdb.Scan(func(k Key, v Value) bool { pdump = append(pdump, kv{k, v}); return true })
		if len(tdump) != len(pdump) {
			t.Fatalf("final dump: tiered %d pairs != plain %d", len(tdump), len(pdump))
		}
		for i := range tdump {
			if tdump[i] != pdump[i] {
				t.Fatalf("final dump pair %d: tiered %+v != plain %+v", i, tdump[i], pdump[i])
			}
		}
		if err := tdb.Err(); err != nil {
			t.Fatalf("tiered DB poisoned at end: %v", err)
		}
	})
}
