package qtrans

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/oracle"
)

// TestRunStreamMatchesRun: RunStream (pipelined and serial) produces
// the same per-batch results and the same final store as batch-at-a-
// time Run on a second DB.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, opt := range []Optimization{None, IntraBatch, Full, Simulation} {
		for _, pipelined := range []bool{false, true} {
			stream, err := Open(Options{Order: 8, Workers: 3, Optimization: opt, CacheCapacity: 64, Pipeline: pipelined})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Open(Options{Order: 8, Workers: 3, Optimization: opt, CacheCapacity: 64})
			if err != nil {
				t.Fatal(err)
			}

			r := rand.New(rand.NewSource(int64(opt)*2 + 5))
			const nBatches = 12
			mkBatch := func() (*Batch, *Batch) {
				a, b := NewBatch(), NewBatch()
				for i := 0; i < 200; i++ {
					k := Key(r.Intn(64))
					switch r.Intn(3) {
					case 0:
						a.Search(k)
						b.Search(k)
					case 1:
						v := Value(r.Intn(1000))
						a.Insert(k, v)
						b.Insert(k, v)
					default:
						a.Delete(k)
						b.Delete(k)
					}
				}
				return a, b
			}

			streamBatches := make([]*Batch, nBatches)
			serialBatches := make([]*Batch, nBatches)
			for i := range streamBatches {
				streamBatches[i], serialBatches[i] = mkBatch()
			}

			in := make(chan *Batch)
			go func() {
				for _, b := range streamBatches {
					in <- b
				}
				close(in)
			}()
			bi := 0
			stream.RunStream(in, func(b *Batch, res *Results) {
				want := serial.Run(serialBatches[bi])
				for pos := 0; pos < 200; pos++ {
					w, wok := want.Search(pos)
					g, gok := res.Search(pos)
					if wok != gok || w != g {
						t.Fatalf("opt=%d pipeline=%v batch %d pos %d: got %+v (%v), want %+v (%v)",
							int(opt), pipelined, bi, pos, g, gok, w, wok)
					}
				}
				bi++
			})
			if bi != nBatches {
				t.Fatalf("opt=%v pipeline=%v: emitted %d of %d", opt, pipelined, bi, nBatches)
			}

			if sl, rl := stream.Len(), serial.Len(); sl != rl {
				t.Fatalf("opt=%v pipeline=%v: final Len %d vs %d", opt, pipelined, sl, rl)
			}
			stream.Close()
			serial.Close()
		}
	}
}

// TestRunStreamConcurrentProducers hammers one pipelined RunStream with
// several producer goroutines sharing the input channel (run under
// -race in CI). Each producer owns a disjoint key range; channel
// semantics keep each producer's batches in its submission order, so a
// per-producer oracle predicts every result even though producers
// interleave arbitrarily.
func TestRunStreamConcurrentProducers(t *testing.T) {
	const (
		producers = 4
		perProd   = 10
		span      = 100 // keys per producer
		batchLen  = 120
	)
	db, err := Open(Options{Order: 8, Workers: 3, CacheCapacity: 32, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	in := make(chan *Batch)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(p) + 1))
			base := p * span
			for b := 0; b < perProd; b++ {
				batch := NewBatch()
				for i := 0; i < batchLen; i++ {
					k := Key(base + r.Intn(span))
					switch r.Intn(3) {
					case 0:
						batch.Search(k)
					case 1:
						batch.Insert(k, Value(r.Intn(10000)))
					default:
						batch.Delete(k)
					}
				}
				in <- batch
			}
		}(p)
	}
	go func() {
		wg.Wait()
		close(in)
	}()

	oracles := make([]*oracle.Oracle, producers)
	for i := range oracles {
		oracles[i] = oracle.New()
	}
	seen := 0
	db.RunStream(in, func(b *Batch, res *Results) {
		// Every key in a batch belongs to one producer's range.
		p := int(b.qs[0].Key) / span
		want := keys.NewResultSet(len(b.qs))
		oracles[p].ApplyAll(b.qs, want)
		for i := int32(0); i < int32(len(b.qs)); i++ {
			w, wok := want.Get(i)
			g, gok := res.rs.Get(i)
			if wok != gok || w != g {
				t.Errorf("producer %d batch: idx %d got %+v (%v), want %+v (%v)", p, i, g, gok, w, wok)
			}
		}
		seen++
	})
	if seen != producers*perProd {
		t.Fatalf("emitted %d of %d batches", seen, producers*perProd)
	}

	// Final store equals the union of the per-producer oracles.
	want := make(map[Key]Value)
	for _, o := range oracles {
		ks, vs := o.Dump()
		for i := range ks {
			want[ks[i]] = vs[i]
		}
	}
	got := make(map[Key]Value)
	db.Scan(func(k Key, v Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("final store: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("final store[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// TestServePipelined runs the online Service over a pipelined DB with
// concurrent clients on disjoint keys (run under -race in CI).
func TestServePipelined(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	svc := db.Serve(ServiceOptions{MaxBatch: 64})

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := Key(c * 1000)
			for i := 0; i < 200; i++ {
				k := base + Key(i)
				if err := svc.Put(k, Value(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				v, found, err := svc.Get(k)
				if err != nil || !found || v != Value(i) {
					t.Errorf("Get(%d) = %d,%v,%v; want %d", k, v, found, err, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Close()

	if n := db.Len(); n != 4*200 {
		t.Fatalf("Len = %d, want %d", n, 4*200)
	}
}
