package qtrans

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultfs"
)

// mixedBatch builds a deterministic insert/search/delete mix keyed off
// round, so two DBs fed the same rounds see byte-identical workloads.
func mixedBatch(round int) *Batch {
	b := NewBatch()
	base := Key(round * 100)
	for i := 0; i < 50; i++ {
		b.Insert(base+Key(i), Value(round)*1000+Value(i))
	}
	for i := 0; i < 40; i++ {
		b.Search(base + Key(i*2)) // half hit keys from this round, half miss
	}
	for i := 0; i < 10; i++ {
		b.Delete(base + Key(i*5))
	}
	return b
}

// TestMetricsOffIdenticalResults is the differential half of the
// zero-overhead contract: the same workload through a DB with
// Options.Metrics set and one without must produce identical results —
// instrumentation may observe the batch path but never steer it.
func TestMetricsOffIdenticalResults(t *testing.T) {
	base := Options{Order: 8, Workers: 2, CacheCapacity: 16}
	plain, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	withMet := base
	withMet.Metrics = NewMetrics()
	metered, err := Open(withMet)
	if err != nil {
		t.Fatal(err)
	}
	defer metered.Close()

	for round := 0; round < 8; round++ {
		bp, bm := mixedBatch(round), mixedBatch(round)
		n := bp.Len()
		rp, rm := plain.Run(bp), metered.Run(bm)
		for pos := 0; pos < n; pos++ {
			gp, okp := rp.Search(pos)
			gm, okm := rm.Search(pos)
			if gp != gm || okp != okm {
				t.Fatalf("round %d pos %d: plain (%+v,%v) != metered (%+v,%v)",
					round, pos, gp, okp, gm, okm)
			}
		}
	}
	if plain.Len() != metered.Len() {
		t.Fatalf("tree size diverged: plain %d, metered %d", plain.Len(), metered.Len())
	}
	// Sanity: the metered DB actually recorded something.
	snap := metered.Metrics().Snapshot()
	if snap.Counters["batches_total"] != 8 {
		t.Fatalf("batches_total = %d, want 8", snap.Counters["batches_total"])
	}
}

// TestMetricsAccessorsOff pins the metrics-off facade surface: no
// registry, no handler, and ServeMetrics refuses with a clear error.
func TestMetricsAccessorsOff(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Metrics() != nil {
		t.Error("Metrics() non-nil on metrics-off DB")
	}
	if db.MetricsHandler() != nil {
		t.Error("MetricsHandler() non-nil on metrics-off DB")
	}
	if _, _, err := db.ServeMetrics("127.0.0.1:0"); err != errNoMetrics {
		t.Errorf("ServeMetrics error = %v, want %v", err, errNoMetrics)
	}
}

// TestMetricsHandlerEndToEnd drives the DB-level exporter: /metrics
// must decode as a MetricsSnapshot holding the batch-path metrics, and
// /healthz reports 200 on a healthy DB.
func TestMetricsHandlerEndToEnd(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2, Metrics: NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Insert(Key(i), Value(i))
	}
	db.Run(b)

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics did not decode: %v", err)
	}
	if snap.Counters["queries_total"] != 100 {
		t.Errorf("queries_total = %d, want 100", snap.Counters["queries_total"])
	}
	if h, ok := snap.Histograms["batch_wall_ns"]; !ok || h.Count != 1 {
		t.Errorf("batch_wall_ns missing or count != 1: %+v", h)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d on healthy DB, want 200", hz.StatusCode)
	}
}

// TestMetricsHealthzFlipsOnStickyError ties the exporter's health to
// the durability layer: once a power cut poisons the WAL, /healthz
// must flip to 503 and carry the sticky error text.
func TestMetricsHealthzFlipsOnStickyError(t *testing.T) {
	fs := faultfs.New()
	opts := Options{
		Order: 8, Workers: 2, CacheCapacity: 16,
		Durability: Durability{Dir: "dur", fs: fs},
		Metrics:    NewMetrics(),
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	db.Put(1, 1)
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("/healthz = %d (%q) before fault, want 200", code, body)
	}

	fs.CutAfter(0)
	for i := Key(2); i < 64 && db.Err() == nil; i++ {
		db.Put(i, Value(i))
	}
	if db.Err() == nil {
		t.Fatal("power cut did not poison the DB")
	}
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after poison, want 503", code)
	}
	if !strings.Contains(body, db.Err().Error()) {
		t.Errorf("/healthz body %q does not carry sticky error %q", body, db.Err())
	}
}

// TestMetricsSnapshotRaceHammer runs Registry snapshots and exporter
// HTTP traffic concurrently with live Serve traffic — the lock-cheap
// counter sharding and atomic histogram buckets must survive the race
// detector (part of `make race`).
func TestMetricsSnapshotRaceHammer(t *testing.T) {
	reg := NewMetrics()
	db, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	svc := db.Serve(ServiceOptions{MaxBatch: 32})
	defer svc.Close()
	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	const (
		clients = 4
		puts    = 60
		reads   = 40
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				k := Key(c*puts + i)
				if err := svc.Put(k, Value(i)); err != nil {
					t.Errorf("client %d put: %v", c, err)
					return
				}
				if _, ok, err := svc.Get(k); err != nil || !ok {
					t.Errorf("client %d lost key %d (ok=%v err=%v)", c, k, ok, err)
					return
				}
			}
		}(c)
	}
	// Snapshot readers race the writers above.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				snap := reg.Snapshot()
				if snap.Counters["queries_total"] < 0 {
					t.Error("negative counter fold")
					return
				}
			}
		}()
	}
	// HTTP scrapes race them too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reads; i++ {
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()

	snap := reg.Snapshot()
	if want := int64(clients * puts * 2); snap.Counters["queries_total"] != want {
		t.Fatalf("queries_total = %d, want %d", snap.Counters["queries_total"], want)
	}
}
