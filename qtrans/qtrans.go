// Package qtrans is the public facade of the repository: a batteries-
// included, high-throughput B+ tree query processing engine combining
// the PALM latch-free bulk-synchronous batch processor with the QTrans
// query-sequence optimizer and inter-batch top-K cache of
//
//	Tian, Qiu, Zhao, Liu, Ren — "Transforming Query Sequences for
//	High-Throughput B+ Tree Processing on Many-Core Processors",
//	CGO 2019.
//
// Quick use:
//
//	db, err := qtrans.Open(qtrans.Options{})
//	defer db.Close()
//
//	batch := qtrans.NewBatch()
//	batch.Insert(100, 7)
//	batch.Search(100)
//	results := db.Run(batch)
//	v, found := results.Search(1)      // query #1 -> 7, true
//
// Batches execute with semantics identical to evaluating their queries
// one at a time in order. For an online (per-query, latency-bounded)
// interface, see Service.
package qtrans

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/batcher"
	"repro/internal/btree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/palm"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tier"
	"repro/internal/wal"
)

// Key is a B+ tree key.
type Key = keys.Key

// Value is the payload stored under a key.
type Value = keys.Value

// Result is the outcome of a search query.
type Result = keys.Result

// KV is one row of a range-scan result.
type KV = keys.KV

// Optimization selects how much of QTrans is applied.
type Optimization int

// Optimization levels (see the paper's Fig. 14 configurations). The
// zero value is Full so that a zero Options opens the fully-optimized
// engine.
const (
	// Full applies intra-batch QTrans plus the inter-batch top-K
	// cache (§V-A + §V-B). The default.
	Full Optimization = iota
	// None runs the plain PALM pipeline.
	None
	// IntraBatch adds only the parallel intra-batch QTrans (§V-A).
	IntraBatch
	// Simulation uses the hash-based elimination of §IV-E's
	// "alternative solution" instead of sort-based QSAT; fastest on
	// few-core hosts where sorting dominates.
	Simulation
)

func (o Optimization) mode() core.Mode {
	switch o {
	case None:
		return core.Original
	case IntraBatch:
		return core.Intra
	case Simulation:
		return core.SimIntra
	default:
		return core.IntraInter
	}
}

// Options configures a DB.
type Options struct {
	// Order is the B+ tree fanout (0 = 64).
	Order int
	// Workers is the number of BSP threads (0 = GOMAXPROCS).
	Workers int
	// Optimization selects the pipeline; the zero value is Full.
	Optimization Optimization
	// CacheCapacity is the top-K cache size (0 = 65536); used by Full.
	CacheCapacity int
	// Pipeline enables two-stage pipelined execution for streamed
	// batches (RunStream, Serve): while the tree evaluates batch N, the
	// QTrans transform of batch N+1 runs concurrently. Semantics are
	// identical to serial execution; single-batch Run is unaffected.
	Pipeline bool
	// Shards range-partitions the key space across this many
	// independent engines (each with its own tree, worker pool, and
	// cache); batches are split by key range, evaluated in parallel,
	// and re-merged in original query order, so semantics are identical
	// to the single-engine path. 0 or 1 selects today's single engine —
	// the zero Options is unchanged. See DESIGN.md §6.
	Shards int
	// ShardKeyMax hints the largest key the workload produces so the
	// initial equal-width shard boundaries cover the real key range
	// (0 = the full uint64 space). A poor hint only skews load, never
	// correctness; DB.Rebalance re-splits from the stored keys.
	ShardKeyMax Key
	// Autoshard enables traffic-aware automatic resharding of a
	// sharded DB (Shards > 1): the splitter's routing pass feeds an
	// online per-key-range heat histogram, and a background controller
	// re-splits boundaries by traffic weight, splits persistently hot
	// shards, merges persistently cold ones, and migrates keys in
	// small slices scheduled exactly at batch boundaries — serving
	// never pauses longer than one inter-batch gap. The zero value
	// keeps autosharding off with the hot path byte- and
	// alloc-identical to previous releases. See DESIGN.md §13.
	Autoshard Autoshard
	// Durability enables crash-safe operation (write-ahead log +
	// atomic snapshots) when its Dir is set; the zero value keeps
	// durability off with semantics identical to previous releases.
	// See durability.go.
	Durability Durability
	// Tiered enables cold-range spilling to disk when its Dir is set
	// (DESIGN.md §14): whole key ranges are demoted out of the
	// in-memory tree into immutable sorted runs when the resident key
	// count exceeds the budget, and batches transparently fault cold
	// ranges back in when they write, RMW, or scan into them (point
	// searches are served from the runs without promotion). At most
	// one bounded action runs per batch boundary through the
	// scheduling gate, so serving never pauses. Combined with
	// Durability, runs and the residency manifest participate in crash
	// recovery. The zero value keeps tiering off with the hot path
	// alloc-identical to previous releases.
	Tiered Tiered
	// Metrics, when non-nil, instruments the full batch path into the
	// given registry (see metrics.go and DESIGN.md §9): per-stage and
	// batch-wall latency histograms, cache/fence/query counters, shard
	// split/merge and WAL append/fsync timings, batcher queue depth and
	// fill. Nil (the zero value) keeps every hot path identical to the
	// uninstrumented build — same results, zero extra allocations.
	Metrics *Metrics

	// Sorted-batch tree kernel ablations (DESIGN.md §8). The zero value
	// keeps all three kernels on; each flag disables one, restoring the
	// pre-kernel code path — results are identical either way.

	// NoPathReuse disables the path-reuse descent of the leaf-search
	// stage (every query re-descends from the root).
	NoPathReuse bool
	// NoBranchlessSearch replaces the branchless intra-node search
	// kernels with closure-based binary search.
	NoBranchlessSearch bool
	// NoMergeApply disables the merge-based leaf application (queries
	// are applied to leaves one at a time).
	NoMergeApply bool
	// NoGappedLayout stores tree nodes in the classic dense layout
	// instead of the default gapped (BS-tree style) layout, in which
	// nodes keep a fixed-width key array with sentinel-filled gaps so
	// intra-node search is branchless and inserts claim gaps instead of
	// shifting (DESIGN.md §10). Results are identical either way.
	NoGappedLayout bool
}

// Autoshard configures traffic-aware automatic resharding (see
// Options.Autoshard). Every field but Enabled is optional; zero picks
// the documented default.
type Autoshard struct {
	// Enabled turns the controller on (requires Options.Shards > 1).
	Enabled bool
	// Buckets is the heat histogram resolution (0 = 256).
	Buckets int
	// Interval is the background controller period (0 = 50ms; negative
	// disables the background goroutine so resharding happens only on
	// explicit DB.AutoshardStep calls).
	Interval time.Duration
	// SplitAbove splits the hottest shard when its heat exceeds this
	// multiple of the mean (0 = 1.6); MergeBelow merges the coldest
	// when its heat falls below this multiple (0 = 0.25). Both must
	// hold for Hysteresis consecutive controller steps (0 = 3).
	SplitAbove float64
	MergeBelow float64
	Hysteresis int
	// MaxStep bounds the pairs migrated per controller step (0 = 4096)
	// — the unit of non-stop-the-world migration.
	MaxStep int
	// MaxShards caps splits (0 = 16); MinShards floors merges (0 = 2).
	MaxShards int
	MinShards int
	// MinHeat is the total histogram heat below which the controller
	// idles (0 = 256).
	MinHeat int64
}

// Tiered configures cold-range spilling to disk (see Options.Tiered
// and DESIGN.md §14). Every field but Dir is optional; zero picks the
// documented default.
type Tiered struct {
	// Dir is the tier directory (run files + residency manifest).
	// Empty means tiering off. Without Options.Durability the
	// directory is wiped on Open (cold runs cannot outlive the process
	// without a log to reconcile against); with it, the directory is
	// recovered and reconciled with the write-ahead log.
	Dir string
	// MaxResidentKeys is the resident budget: while the in-memory
	// tree stores more keys, batch boundaries demote cold ranges.
	// 0 disables demotion (existing cold ranges are still served).
	MaxResidentKeys int
	// RunKeys caps the pairs per demoted run (0 = 4096).
	RunKeys int
	// HeatBuckets is the demotion policy's heat histogram resolution
	// (0 = 64).
	HeatBuckets int
	// KeyMax bounds the demotable key space to [0, KeyMax] and sizes
	// the heat histogram over it (0 = the full uint64 space).
	KeyMax Key
	// MaxActionsPerBatch bounds the demotions applied at one batch
	// boundary (0 = 1) — the unit of never-pause maintenance.
	MaxActionsPerBatch int
	// PromoteReads promotes a cold range on any access, including
	// point searches; by default only writes, RMWs, and scans fault a
	// range back in and searches are answered from the run on disk.
	PromoteReads bool

	// fs overrides the filesystem (fault-injection tests only).
	fs wal.FS
}

// tierConfig translates the facade knobs to the tier store config.
func (opts Options) tierConfig() tier.Config {
	return tier.Config{
		Dir:          opts.Tiered.Dir,
		FS:           opts.Tiered.fs,
		MaxResident:  opts.Tiered.MaxResidentKeys,
		RunKeys:      opts.Tiered.RunKeys,
		Buckets:      opts.Tiered.HeatBuckets,
		KeyMax:       opts.Tiered.KeyMax,
		PromoteReads: opts.Tiered.PromoteReads,
		Metrics:      opts.Metrics,
	}
}

// shardConfig translates the facade knobs to the internal controller
// config.
func (a Autoshard) shardConfig() shard.AutoshardConfig {
	return shard.AutoshardConfig{
		Enabled:    a.Enabled,
		Buckets:    a.Buckets,
		Interval:   a.Interval,
		SplitAbove: a.SplitAbove,
		MergeBelow: a.MergeBelow,
		Hysteresis: a.Hysteresis,
		MaxStep:    a.MaxStep,
		MaxShards:  a.MaxShards,
		MinShards:  a.MinShards,
		MinHeat:    a.MinHeat,
	}
}

// layout translates the ablation flag to the tree-level layout choice.
func (opts Options) layout() btree.Layout {
	if opts.NoGappedLayout {
		return btree.LayoutDense
	}
	return btree.LayoutGapped
}

// engineConfig translates Options to the per-engine configuration
// (for a sharded DB this is each shard's config; Workers is then a
// per-shard thread count).
func (opts Options) engineConfig() core.EngineConfig {
	capacity := opts.CacheCapacity
	if capacity == 0 {
		capacity = 1 << 16
	}
	return core.EngineConfig{
		Mode: opts.Optimization.mode(),
		Palm: palm.Config{
			Order:              opts.Order,
			Workers:            opts.Workers,
			LoadBalance:        true,
			NoPathReuse:        opts.NoPathReuse,
			NoBranchlessSearch: opts.NoBranchlessSearch,
			NoMergeApply:       opts.NoMergeApply,
			NoGappedLayout:     opts.NoGappedLayout,
		},
		CacheCapacity: capacity,
		CachePolicy:   cache.LRU,
		Pipeline:      opts.Pipeline,
		Metrics:       opts.Metrics,
	}
}

// engine is the execution surface shared by the single core.Engine and
// the range-partitioned shard.Engine; DB drives whichever Options
// selected through it.
type engine interface {
	ProcessBatch(qs []keys.Query, rs *keys.ResultSet)
	ProcessStream(in <-chan *core.Job, emit func(*core.Job))
	Flush()
	Train(hot []keys.Key)
	Stats() *stats.Batch
	Close()
}

// DB is a B+ tree database processing query batches.
type DB struct {
	eng       engine
	single    *core.Engine  // non-nil when Shards <= 1
	sharded   *shard.Engine // non-nil when Shards > 1
	pipelined bool
	layout    btree.Layout // node layout from Options (for snapshots)
	// tier is the cold-store wrapper (nil when Options.Tiered is off;
	// when non-nil it is also eng).
	tier *tier.Engine

	// gate serializes snapshots against batch application: every batch
	// holds it for reading, Save/Checkpoint for writing, so a snapshot
	// always observes a whole-batch boundary — even while a RunStream
	// or Service is active.
	gate sync.RWMutex

	// Durability state (nil/zero when durability is off).
	log    *wal.Log
	durDir string
	durFS  wal.FS

	// met is the registry from Options.Metrics (nil when metrics off).
	met *Metrics
}

// Open creates a DB. The zero Options selects the fully-optimized
// pipeline with default sizes. With Options.Durability.Dir set, Open
// first recovers whatever the directory holds — snapshot, committed
// batches, torn crash debris — and then serves with write-ahead
// logging on.
func Open(opts Options) (*DB, error) {
	if opts.Durability.Dir != "" {
		return openDurable(opts)
	}
	db, err := build(opts, nil)
	if err != nil {
		return nil, err
	}
	// Without durability the tier directory starts fresh: cold runs
	// cannot be reconciled without a log, so wipe any leftovers.
	if err := db.wireTier(opts, true); err != nil {
		db.eng.Close()
		return nil, err
	}
	return db, nil
}

// wireTier wraps the engine stack with the tier store when
// Options.Tiered is on. With wipe, existing tier state is discarded.
func (db *DB) wireTier(opts Options, wipe bool) error {
	if opts.Tiered.Dir == "" {
		return nil
	}
	st, err := tier.Open(opts.tierConfig(), wipe)
	if err != nil {
		return err
	}
	var inner tier.Inner = db.single
	if db.sharded != nil {
		inner = db.sharded
	}
	te := tier.NewEngine(inner, st, opts.Tiered.MaxActionsPerBatch)
	te.SetGate(&db.gate)
	db.eng, db.tier = te, te
	return nil
}

// build constructs the engine stack for opts — sharded or single,
// over a restored tree or fresh — and installs the snapshot gate.
func build(opts Options, tree *btree.Tree) (*DB, error) {
	db := &DB{pipelined: opts.Pipeline, layout: opts.layout(), met: opts.Metrics}
	if opts.Shards > 1 {
		cfg := shard.Config{
			Shards:    opts.Shards,
			Engine:    opts.engineConfig(),
			KeyMax:    opts.ShardKeyMax,
			Autoshard: opts.Autoshard.shardConfig(),
		}
		var se *shard.Engine
		var err error
		if tree != nil {
			se, err = shard.NewFromTree(cfg, tree)
		} else {
			se, err = shard.New(cfg)
		}
		if err != nil {
			return nil, err
		}
		db.eng, db.sharded = se, se
		se.SetGate(&db.gate)
		// The background controller steps through the same gate the
		// batches hold, so it must start after the gate is installed.
		se.StartAutoshard()
		return db, nil
	}
	var eng *core.Engine
	var err error
	if tree != nil {
		eng, err = core.NewEngineWithTree(opts.engineConfig(), tree)
	} else {
		eng, err = core.NewEngine(opts.engineConfig())
	}
	if err != nil {
		return nil, err
	}
	db.eng, db.single = eng, eng
	eng.SetGate(&db.gate)
	return db, nil
}

// Close releases the DB's worker pools and, when durability is on,
// fsyncs and closes the write-ahead log.
func (db *DB) Close() {
	if db.log != nil {
		db.log.Close()
	}
	db.eng.Close()
}

// Batch assembles queries for one Run. Positions (0-based submission
// order) identify queries in the Results.
type Batch struct {
	qs []keys.Query
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len returns the number of queries added.
func (b *Batch) Len() int { return len(b.qs) }

// Search appends S(key) and returns its position.
func (b *Batch) Search(k Key) int {
	b.qs = append(b.qs, keys.Search(k))
	return len(b.qs) - 1
}

// Insert appends I(key, value) — insert-or-update — and returns its
// position.
func (b *Batch) Insert(k Key, v Value) int {
	b.qs = append(b.qs, keys.Insert(k, v))
	return len(b.qs) - 1
}

// Delete appends D(key) and returns its position.
func (b *Batch) Delete(k Key) int {
	b.qs = append(b.qs, keys.Delete(k))
	return len(b.qs) - 1
}

// Scan appends a range scan over [lo, hi) returning at most limit rows
// in ascending key order (limit 0 = unlimited), and returns its
// position. Retrieve the rows with Results.Scan; Results.Search at the
// same position reports the row count. A scan observes every earlier
// write in the batch and none of the later ones, exactly as in serial
// evaluation.
func (b *Batch) Scan(lo, hi Key, limit Value) int {
	b.qs = append(b.qs, keys.Scan(lo, hi, Value(limit)))
	return len(b.qs) - 1
}

// AddDelta appends an atomic read-modify-write that adds delta to the
// key's value (treating an absent key as 0, so the key is present
// afterwards) and returns its position. The result at this position is
// the value *before* the update, with Found reporting prior presence.
func (b *Batch) AddDelta(k Key, delta Value) int {
	b.qs = append(b.qs, keys.AddDelta(k, delta))
	return len(b.qs) - 1
}

// SetIfAbsent appends an atomic insert-if-absent: the key is set to v
// only when not present. Returns its position; the result there is the
// prior value and presence (Found == true means v was NOT stored).
func (b *Batch) SetIfAbsent(k Key, v Value) int {
	b.qs = append(b.qs, keys.SetIfAbsent(k, v))
	return len(b.qs) - 1
}

// Results holds the answers of one Run, addressed by query position.
type Results struct {
	rs *keys.ResultSet
}

// Search returns the result of the search query at position pos.
// found is false if the key was absent; ok distinguishes "query at pos
// was not a search" (no result recorded). RMW queries record their
// pre-update value here; scans record their row count.
func (r *Results) Search(pos int) (res Result, ok bool) {
	return r.rs.Get(int32(pos))
}

// Scan returns the rows of the range scan at position pos, ascending
// by key. ok is false when pos did not hold a scan. The slice aliases
// internal storage; treat it as read-only (and, under RunStream, copy
// it before the callback returns).
func (r *Results) Scan(pos int) (rows []KV, ok bool) {
	return r.rs.ScanRows(int32(pos))
}

// Run evaluates the batch with as-if-serial semantics and returns its
// results. The batch is consumed and must not be reused.
func (db *DB) Run(b *Batch) *Results {
	keys.Number(b.qs)
	rs := keys.NewResultSet(len(b.qs))
	db.eng.ProcessBatch(b.qs, rs)
	return &Results{rs: rs}
}

// RunStream evaluates a stream of batches in arrival order, calling fn
// with each batch's results as it completes. Semantics are identical to
// calling Run on each batch in order; with Options.Pipeline the QTrans
// transform of the next batch overlaps tree evaluation of the current
// one. The Results passed to fn reuse internal storage and are valid
// only until fn returns; batches are consumed. RunStream returns when
// in is closed and every batch has been emitted. The DB must not be
// used concurrently from other goroutines while a RunStream is active.
func (db *DB) RunStream(in <-chan *Batch, fn func(*Batch, *Results)) {
	jobs := make(chan *core.Job)
	free := make(chan *core.Job, 4)
	go func() {
		for b := range in {
			var j *core.Job
			select {
			case j = <-free:
			default:
				j = new(core.Job)
			}
			keys.Number(b.qs)
			j.Qs = b.qs
			j.RS = nil
			j.Tag = b
			jobs <- j
		}
		close(jobs)
	}()
	res := &Results{}
	db.eng.ProcessStream(jobs, func(j *core.Job) {
		res.rs = j.RS
		fn(j.Tag.(*Batch), res)
		res.rs = nil
		j.Qs, j.Tag = nil, nil
		select {
		case free <- j:
		default:
		}
	})
}

// Get is a convenience point lookup (one-query batch).
func (db *DB) Get(k Key) (Value, bool) {
	b := NewBatch()
	b.Search(k)
	res := db.Run(b)
	r, _ := res.Search(0)
	return r.Value, r.Found
}

// Put is a convenience single upsert.
func (db *DB) Put(k Key, v Value) {
	b := NewBatch()
	b.Insert(k, v)
	db.Run(b)
}

// Remove is a convenience single delete.
func (db *DB) Remove(k Key) {
	b := NewBatch()
	b.Delete(k)
	db.Run(b)
}

// Len returns the number of stored pairs. In Full mode this flushes
// the caches first so the count is exact. On a tiered DB the count
// includes cold pairs spilled to disk.
func (db *DB) Len() int {
	if db.tier != nil {
		return db.tier.Len()
	}
	if db.sharded != nil {
		return db.sharded.Len()
	}
	db.eng.Flush()
	return db.single.Processor().Tree().Len()
}

// Scan visits all pairs in ascending key order (flushing the caches
// first) until fn returns false. On a tiered DB cold ranges are read
// from their runs in place, merged into key order; a run read failure
// stops the scan and surfaces through Err.
func (db *DB) Scan(fn func(k Key, v Value) bool) {
	if db.tier != nil {
		db.tier.Scan(fn)
		return
	}
	if db.sharded != nil {
		db.sharded.Scan(fn)
		return
	}
	db.eng.Flush()
	db.single.Processor().Tree().Scan(fn)
}

// TierStats summarizes a tiered DB's cold store (resident/cold keys,
// promotions, demotions, faults, disk bytes); ok is false when the DB
// was opened without Options.Tiered.
func (db *DB) TierStats() (st tier.Stats, ok bool) {
	if db.tier == nil {
		return tier.Stats{}, false
	}
	return db.tier.Store().Stats(), true
}

// Warm pre-populates the top-K cache with hot keys (§V-B training).
// On a sharded DB every key is trained into its owning shard's cache.
func (db *DB) Warm(hot []Key) { db.eng.Train(hot) }

// Rebalance re-splits a sharded DB's boundaries so every shard holds an
// equal share of the stored keys, migrating keys between shards. Call
// it between batches (not concurrently with Run, RunStream, or an open
// Service). Semantics are unaffected — only the partition moves. It
// returns the number of keys that changed shard; on an unsharded DB it
// is a no-op.
func (db *DB) Rebalance() (migrated int, err error) {
	if db.sharded == nil {
		return 0, nil
	}
	return db.sharded.Rebalance()
}

// AutoshardStep runs one autoshard controller step synchronously (see
// Options.Autoshard): the controller takes the batch gate exclusively,
// applies at most one bounded action — a boundary move, a split, or one
// drain slice of a merge — and returns what it did. Useful with a
// negative Autoshard.Interval to drive resharding from the caller's
// own cadence; a no-op reporting the current shard count when
// autosharding is off or the DB is unsharded.
func (db *DB) AutoshardStep() shard.AutoshardReport {
	if db.sharded == nil {
		return shard.AutoshardReport{Shards: 1}
	}
	return db.sharded.AutoshardStep()
}

// ShardStats exposes the routing/rebalance counters of a sharded DB
// (nil when unsharded).
func (db *DB) ShardStats() *stats.Shard {
	if db.sharded == nil {
		return nil
	}
	return db.sharded.ShardStats()
}

// Save writes a snapshot of the store (caches flushed first) that Load
// can restore. Snapshots are order-portable and shard-count-portable:
// a sharded DB writes the same single-tree snapshot format as an
// unsharded one. Save waits for in-flight batches at a batch boundary,
// so it may be called while a RunStream or Service is active.
func (db *DB) Save(w io.Writer) error {
	db.gate.Lock()
	defer db.gate.Unlock()
	return db.saveLocked(w)
}

// saveLocked dumps the store (dirty cache entries flushed first) with
// the snapshot gate held: no batch is mid-application, so the dump is
// exactly the state after the last completed batch. On a tiered DB
// the export materializes cold runs into the single-tree format, so
// the snapshot loads anywhere — including a DB without Options.Tiered
// (Checkpoint, by contrast, snapshots hot state + residency only and
// never materializes cold data; see durability.go).
func (db *DB) saveLocked(w io.Writer) error {
	if db.tier != nil {
		ks, vs, err := db.tier.DumpLocked()
		if err != nil {
			return err
		}
		order := db.order()
		tree, err := btree.BulkLoadLayout(order, db.layout, ks, vs)
		if err != nil {
			return err
		}
		return tree.Save(w)
	}
	if db.sharded != nil {
		ks, vs := db.sharded.Dump()
		tree, err := btree.BulkLoadLayout(db.sharded.Order(), db.layout, ks, vs)
		if err != nil {
			return err
		}
		return tree.Save(w)
	}
	db.eng.Flush()
	return db.single.Processor().Tree().Save(w)
}

// Load restores a snapshot written by Save into a fresh DB configured
// by opts (opts.Order <= 0 keeps the snapshot's order). With
// opts.Shards > 1 the snapshot is split across the shards by key
// range. Load restores portable exports only; to reopen a durable
// directory, pass its Options.Durability to Open instead.
func Load(r io.Reader, opts Options) (*DB, error) {
	if opts.Durability.Dir != "" {
		return nil, fmt.Errorf("qtrans: Load does not take Options.Durability; Open recovers a durable directory")
	}
	tree, err := btree.LoadLayout(r, opts.Order, opts.layout())
	if err != nil {
		return nil, err
	}
	opts.Order = tree.Order()
	db, err := build(opts, tree)
	if err != nil {
		return nil, err
	}
	if err := db.wireTier(opts, true); err != nil {
		db.eng.Close()
		return nil, err
	}
	return db, nil
}

// order returns the tree fanout of the engine stack.
func (db *DB) order() int {
	if db.sharded != nil {
		return db.sharded.Order()
	}
	return db.single.Processor().Tree().Order()
}

// LastBatchStats exposes the instrumentation of the most recent Run.
func (db *DB) LastBatchStats() *stats.Batch { return db.eng.Stats() }

// Explain classifies a batch's redundancy without running it: how many
// queries QTrans would eliminate and why (the three §III-C categories).
// The batch is not consumed.
func Explain(b *Batch) core.Report { return core.Explain(b.qs) }

// Service wraps a DB with an online, latency-bounded interface:
// individual queries are submitted from any goroutine and batched
// transparently (§VI-D's online-processing regime). All seven
// operations are available online — point ops (Get/Put/Remove), range
// scans (Scan), and atomic RMW (AddDelta/SetIfAbsent) — mirroring the
// Batch vocabulary; assembling a Batch and calling Run remains the
// higher-throughput path when queries arrive pre-grouped. The same
// operation set is served over TCP by cmd/qtransserver, which feeds a
// network front end (internal/server) from the Batcher accessor.
type Service struct {
	db *DB
	b  *batcher.Batcher
}

// ServiceOptions tunes the online batching.
type ServiceOptions struct {
	// MaxBatch flushes when this many queries are pending (0 = 4096).
	MaxBatch int
	// MaxDelay bounds how long a query waits before its batch starts
	// (0 = 10ms).
	MaxDelay time.Duration
	// TargetLatency, when positive, auto-tunes the batch size so that
	// batch processing time approaches the target (the §VI-D
	// throughput/latency trade). Unavailable when the DB was opened
	// with Pipeline (overlapped batches have no attributable
	// per-batch processing time); Pipeline takes precedence.
	TargetLatency time.Duration
}

// Serve wraps db in an online Service. The db must not be used
// directly while the service is open. A DB opened with Pipeline
// serves overlapped: the transform of one dispatched batch runs
// while the previous one is still in the tree.
func (db *DB) Serve(opts ServiceOptions) *Service {
	return &Service{
		db: db,
		b: batcher.New(db.eng, batcher.Config{
			MaxBatch:      opts.MaxBatch,
			MaxDelay:      opts.MaxDelay,
			TargetLatency: opts.TargetLatency,
			Pipeline:      db.pipelined,
			Metrics:       db.met,
		}),
	}
}

// Get looks a key up, blocking until its batch executes.
func (s *Service) Get(k Key) (Value, bool, error) {
	f, err := s.b.Submit(keys.Search(k))
	if err != nil {
		return 0, false, err
	}
	r, _ := f.Get()
	return r.Value, r.Found, nil
}

// Put upserts a pair, blocking until applied.
func (s *Service) Put(k Key, v Value) error {
	f, err := s.b.Submit(keys.Insert(k, v))
	if err != nil {
		return err
	}
	f.Get()
	return nil
}

// Remove deletes a key, blocking until applied.
func (s *Service) Remove(k Key) error {
	f, err := s.b.Submit(keys.Delete(k))
	if err != nil {
		return err
	}
	f.Get()
	return nil
}

// PutAsync upserts without waiting; the returned wait function blocks
// until the mutation is applied.
func (s *Service) PutAsync(k Key, v Value) (wait func(), err error) {
	f, err := s.b.Submit(keys.Insert(k, v))
	if err != nil {
		return nil, err
	}
	return func() { f.Get() }, nil
}

// Scan returns all present pairs with lo <= key < hi in ascending key
// order, at most limit rows (limit 0 = unlimited), blocking until its
// batch executes. The rows are a private copy, valid indefinitely.
func (s *Service) Scan(lo, hi Key, limit Value) ([]KV, error) {
	f, err := s.b.Submit(keys.Scan(lo, hi, limit))
	if err != nil {
		return nil, err
	}
	rows, _ := f.Rows()
	return rows, nil
}

// AddDelta atomically sets key = old + delta (absent = 0) and reports
// the key's state before the transform, blocking until applied.
func (s *Service) AddDelta(k Key, delta Value) (old Value, existed bool, err error) {
	f, err := s.b.Submit(keys.AddDelta(k, delta))
	if err != nil {
		return 0, false, err
	}
	r, _ := f.Get()
	return r.Value, r.Found, nil
}

// SetIfAbsent atomically inserts v only when k is absent and reports
// the key's state before the transform (existed == true means the
// stored value was left untouched), blocking until applied.
func (s *Service) SetIfAbsent(k Key, v Value) (old Value, existed bool, err error) {
	f, err := s.b.Submit(keys.SetIfAbsent(k, v))
	if err != nil {
		return 0, false, err
	}
	r, _ := f.Get()
	return r.Value, r.Found, nil
}

// Batcher exposes the Service's underlying batcher. It is the hook
// the network front end builds on: internal/server.Config takes a
// *batcher.Batcher, so cmd/qtransserver serves this one over TCP and
// reads its Load() as the admission-control congestion signal.
func (s *Service) Batcher() *batcher.Batcher { return s.b }

// Close flushes pending queries and stops the service. The underlying
// DB remains usable.
func (s *Service) Close() { s.b.Close() }
