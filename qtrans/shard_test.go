package qtrans

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/oracle"
)

// TestShardedRunMatchesUnsharded: identical batch sequences through a
// sharded DB (several shard counts) and an unsharded DB produce
// byte-identical results and final stores.
func TestShardedRunMatchesUnsharded(t *testing.T) {
	const span = 256
	for _, shards := range []int{2, 3, 8} {
		sharded, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 32,
			Shards: shards, ShardKeyMax: span - 1})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 32})
		if err != nil {
			t.Fatal(err)
		}

		r := rand.New(rand.NewSource(int64(shards)))
		for batch := 0; batch < 8; batch++ {
			a, b := NewBatch(), NewBatch()
			for i := 0; i < 150; i++ {
				k := Key(r.Intn(span))
				switch r.Intn(3) {
				case 0:
					a.Search(k)
					b.Search(k)
				case 1:
					v := Value(r.Intn(1000))
					a.Insert(k, v)
					b.Insert(k, v)
				default:
					a.Delete(k)
					b.Delete(k)
				}
			}
			got := sharded.Run(a)
			want := plain.Run(b)
			for pos := 0; pos < 150; pos++ {
				w, wok := want.Search(pos)
				g, gok := got.Search(pos)
				if wok != gok || w != g {
					t.Fatalf("shards=%d batch %d pos %d: got %+v (%v), want %+v (%v)",
						shards, batch, pos, g, gok, w, wok)
				}
			}
		}
		if sl, pl := sharded.Len(), plain.Len(); sl != pl {
			t.Fatalf("shards=%d: Len %d vs unsharded %d", shards, sl, pl)
		}
		if st := sharded.ShardStats(); st == nil || st.RoutedTotal() == 0 {
			t.Fatalf("shards=%d: ShardStats missing routing counts: %v", shards, st)
		}
		if plain.ShardStats() != nil {
			t.Fatal("unsharded DB reports ShardStats")
		}
		sharded.Close()
		plain.Close()
	}
}

// TestShardedStreamConcurrentProducers hammers one sharded, pipelined
// RunStream with several producer goroutines sharing the input channel
// (run under -race in CI). Producer key ranges deliberately straddle
// the shard boundaries: with 3 shards over [0, 400) and 4 producers
// owning 100-key ranges, every producer's traffic crosses a boundary.
func TestShardedStreamConcurrentProducers(t *testing.T) {
	const (
		producers = 4
		perProd   = 10
		span      = 100 // keys per producer
		batchLen  = 120
	)
	db, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 32,
		Pipeline: true, Shards: 3, ShardKeyMax: producers*span - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	in := make(chan *Batch)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(p) + 1))
			base := p * span
			for b := 0; b < perProd; b++ {
				batch := NewBatch()
				for i := 0; i < batchLen; i++ {
					k := Key(base + r.Intn(span))
					switch r.Intn(3) {
					case 0:
						batch.Search(k)
					case 1:
						batch.Insert(k, Value(r.Intn(10000)))
					default:
						batch.Delete(k)
					}
				}
				in <- batch
			}
		}(p)
	}
	go func() {
		wg.Wait()
		close(in)
	}()

	oracles := make([]*oracle.Oracle, producers)
	for i := range oracles {
		oracles[i] = oracle.New()
	}
	seen := 0
	db.RunStream(in, func(b *Batch, res *Results) {
		p := int(b.qs[0].Key) / span
		want := keys.NewResultSet(len(b.qs))
		oracles[p].ApplyAll(b.qs, want)
		for i := int32(0); i < int32(len(b.qs)); i++ {
			w, wok := want.Get(i)
			g, gok := res.rs.Get(i)
			if wok != gok || w != g {
				t.Errorf("producer %d batch: idx %d got %+v (%v), want %+v (%v)", p, i, g, gok, w, wok)
			}
		}
		seen++
	})
	if seen != producers*perProd {
		t.Fatalf("emitted %d of %d batches", seen, producers*perProd)
	}

	want := make(map[Key]Value)
	for _, o := range oracles {
		ks, vs := o.Dump()
		for i := range ks {
			want[ks[i]] = vs[i]
		}
	}
	got := make(map[Key]Value)
	db.Scan(func(k Key, v Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("final store: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("final store[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// TestShardedRebalanceUnderLoad interleaves Rebalance between batches
// of a skewed workload and re-verifies every result against the
// oracle: the partition moves, the semantics must not.
func TestShardedRebalanceUnderLoad(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2, CacheCapacity: 16,
		Shards: 4}) // no ShardKeyMax: worst-case bounds, everything in shard 0
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	orc := oracle.New()
	r := rand.New(rand.NewSource(7))
	rebalances := 0
	for batch := 0; batch < 12; batch++ {
		b := NewBatch()
		// Skewed: hot range drifts with the batch number so each
		// rebalance's boundaries are stale by the next batch.
		base := batch * 40
		for i := 0; i < 100; i++ {
			k := Key(base + r.Intn(80))
			switch r.Intn(3) {
			case 0:
				b.Search(k)
			case 1:
				b.Insert(k, Value(r.Intn(10000)))
			default:
				b.Delete(k)
			}
		}
		qs := append([]keys.Query(nil), b.qs...)
		keys.Number(qs)
		want := keys.NewResultSet(len(qs))
		orc.ApplyAll(qs, want)

		got := db.Run(b)
		for i := int32(0); i < int32(len(qs)); i++ {
			w, wok := want.Get(i)
			g, gok := got.rs.Get(i)
			if wok != gok || w != g {
				t.Fatalf("batch %d idx %d: got %+v (%v), want %+v (%v)", batch, i, g, gok, w, wok)
			}
		}

		if batch%3 == 2 {
			if _, err := db.Rebalance(); err != nil {
				t.Fatalf("rebalance after batch %d: %v", batch, err)
			}
			rebalances++
		}
	}

	if st := db.ShardStats(); st.Rebalances != int64(rebalances) {
		t.Fatalf("Rebalances = %d, want %d", st.Rebalances, rebalances)
	}
	oks, ovs := orc.Dump()
	if n := db.Len(); n != len(oks) {
		t.Fatalf("final Len = %d, want %d", n, len(oks))
	}
	i := 0
	db.Scan(func(k Key, v Value) bool {
		if k != oks[i] || v != ovs[i] {
			t.Fatalf("scan[%d] = (%d,%d), want (%d,%d)", i, k, v, oks[i], ovs[i])
		}
		i++
		return true
	})

	// Rebalance on an unsharded DB is a documented no-op.
	plain, err := Open(Options{Order: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if n, err := plain.Rebalance(); n != 0 || err != nil {
		t.Fatalf("unsharded Rebalance = %d, %v; want 0, nil", n, err)
	}
}

// TestServeSharded runs the online Service over a sharded, pipelined
// DB with concurrent clients (run under -race in CI): the batcher path
// must work transparently on top of the shard engine.
func TestServeSharded(t *testing.T) {
	db, err := Open(Options{Order: 8, Workers: 2, Shards: 4,
		ShardKeyMax: 4*1000 + 200, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	svc := db.Serve(ServiceOptions{MaxBatch: 64})

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := Key(c * 1000)
			for i := 0; i < 200; i++ {
				k := base + Key(i)
				if err := svc.Put(k, Value(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				v, found, err := svc.Get(k)
				if err != nil || !found || v != Value(i) {
					t.Errorf("Get(%d) = %d,%v,%v; want %d", k, v, found, err, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Close()

	if n := db.Len(); n != 4*200 {
		t.Fatalf("Len = %d, want %d", n, 4*200)
	}
}

// TestShardedSaveLoad round-trips a snapshot across shard counts: a
// sharded DB saves the same single-tree format as an unsharded one, and
// a snapshot can be re-opened with any shard count.
func TestShardedSaveLoad(t *testing.T) {
	src, err := Open(Options{Order: 8, Workers: 2, Shards: 3, ShardKeyMax: 999})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 300; i++ {
		b.Insert(Key(i*3), Value(i))
	}
	src.Run(b)

	var snap bytes.Buffer
	if err := src.Save(&snap); err != nil {
		t.Fatal(err)
	}
	src.Close()

	for _, shards := range []int{0, 2, 8} {
		db, err := Load(bytes.NewReader(snap.Bytes()), Options{Workers: 2,
			Shards: shards, ShardKeyMax: 999})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if n := db.Len(); n != 300 {
			t.Fatalf("shards=%d: Len = %d, want 300", shards, n)
		}
		for _, i := range []int{0, 7, 150, 299} {
			if v, ok := db.Get(Key(i * 3)); !ok || v != Value(i) {
				t.Fatalf("shards=%d: Get(%d) = %d,%v; want %d", shards, i*3, v, ok, i)
			}
		}
		if _, ok := db.Get(1); ok {
			t.Fatalf("shards=%d: Get(1) found a key that was never stored", shards)
		}
		db.Close()
	}
}
